// Cluster snapshot/fork at kernel barriers.
//
// A bulk-synchronous cluster is quiescent between kernels: every node
// engine is drained and every driver has no migration work in flight,
// so no pending closures reference live state and the whole cluster can
// be deep-copied through the same component hooks single-GPU forking
// uses (engine Snapshot/Restore, uvm.Driver.CloneWith, gpu.GPU.CloneFor).
// In sequential mode the one shared engine is restored into the fork;
// in PDES mode each node's private engine is restored separately and a
// fresh coordinator is built over the cloned nodes, so the fork keeps
// the parent's execution mode — and, by the PDES equivalence property,
// its byte-identical results.
//
// Unlike snapshot.RunGroup there is no decision monitor here: the
// caller owns the claim that the forked configuration would have taken
// the identical decisions over the shared prefix (trivially true for
// the self-fork the equivalence tests and uvmsim -snapshot-check use).
package multigpu

import (
	"fmt"

	"uvmsim/internal/config"
	"uvmsim/internal/mm"
	"uvmsim/internal/sim"
)

// KernelCount returns the number of kernel launches in the workload.
func (c *Cluster) KernelCount() int { return len(c.built.Kernels) }

// Quiescent reports whether the cluster sits at a forkable barrier: no
// pending events on any engine and no driver with outstanding
// migration work. RunKernel drains the engines fully, so barriers are
// normally quiescent, but a driver can still carry deferred work
// (write-back queues, advice state) — check before every Fork.
func (c *Cluster) Quiescent() bool {
	if c.eng != nil && c.eng.Pending() != 0 {
		return false
	}
	for _, n := range c.nodes {
		if c.eng == nil && n.eng.Pending() != 0 {
			return false
		}
		if n.drv.PendingWork() {
			return false
		}
	}
	return true
}

// Fork deep-copies the cluster at a quiescent kernel barrier into a new
// cluster running under cfg, which must keep the parent's execution
// mode (sequential vs PDES — ClusterWorkers is not a policy field, so
// every groupable configuration does) and its geometry (per-GPU memory,
// TLB reach; the component clone hooks reject mismatches). The fork
// resumes from the same barrier via RunKernel/Finish; the parent
// remains runnable and unaware of the fork.
func (c *Cluster) Fork(cfg config.Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("multigpu: fork config: %w", err)
	}
	if c.checkers != nil || c.checkEvery != 0 {
		return nil, fmt.Errorf("multigpu: fork with observability attached")
	}
	if !c.Quiescent() {
		return nil, fmt.Errorf("multigpu: fork at a non-quiescent barrier")
	}
	workers := cfg.ClusterWorkers
	if workers > len(c.nodes) {
		workers = len(c.nodes)
	}
	parentPar := c.par != nil
	if (workers > 1) != parentPar {
		return nil, fmt.Errorf("multigpu: fork cannot change execution mode (parent PDES=%v, cfg wants ClusterWorkers=%d)",
			parentPar, cfg.ClusterWorkers)
	}

	fork := &Cluster{built: c.built, cfg: cfg}
	if !parentPar {
		eng := sim.NewEngine()
		eng.SetEventBudget(eventBudget)
		eng.Restore(c.eng.Snapshot())
		fork.eng = eng
	}
	for _, n := range c.nodes {
		eng := fork.eng
		if parentPar {
			eng = sim.NewEngine()
			eng.SetEventBudget(eventBudget)
			eng.Restore(n.eng.Snapshot())
		}
		// Each driver owns its pipeline, exactly as in New (which builds
		// one per uvm.New call).
		pipe, err := mm.Build(cfg)
		if err != nil {
			return nil, fmt.Errorf("multigpu: fork pipeline: %w", err)
		}
		drv, err := n.drv.CloneWith(eng, cfg, pipe)
		if err != nil {
			return nil, err
		}
		g, err := n.g.CloneFor(eng, cfg, drv, drv.Stats())
		if err != nil {
			return nil, err
		}
		fork.nodes = append(fork.nodes, &node{eng: eng, drv: drv, g: g})
	}
	if parentPar {
		// The geometry guards above make the cloned link identical to the
		// parent's, so the lookahead is the parent's and positive.
		la := 2 * fork.nodes[0].drv.Link().Lookahead()
		fork.par = newCoordinator(fork.nodes, workers, la)
	}
	return fork, nil
}
