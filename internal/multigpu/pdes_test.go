package multigpu

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/obs"
)

// clusterCSV renders a cluster result as CSV, one row per GPU with every
// counter field; byte equality of two renderings is the equivalence
// criterion the PDES mode promises.
func clusterCSV(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan,%d\n", r.Cycles)
	for i := range r.PerGPU {
		fmt.Fprintf(&b, "gpu%d,%+v\n", i, r.PerGPU[i])
	}
	return b.String()
}

// Property: for randomized workload/scale/policy draws, every GPU count
// in 1..8 and every worker count in {1, 2, GOMAXPROCS}, the PDES
// cluster produces byte-identical stats/CSV output to the sequential
// shared-engine cluster (which worker<=1 falls back to). The built
// workload is shared across all runs of a trial, doubling as a
// concurrent-sharing check under -race.
func TestClusterParallelEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5EED))
	names := []string{"bfs", "ra", "sssp"}
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	trials := 5
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		name := names[rng.Intn(len(names))]
		nGPUs := 1 + rng.Intn(8)
		scale := 0.04 + 0.04*rng.Float64()
		pol := config.Policies()[rng.Intn(len(config.Policies()))]
		b, cfg := core.PrepareWorkload(name, scale, nGPUs, 125, pol, config.Default())
		want := clusterCSV(New(b, cfg, nGPUs).Run())
		for _, w := range workerCounts {
			pcfg := cfg
			pcfg.ClusterWorkers = w
			cl := New(b, pcfg, nGPUs)
			if got := clusterCSV(cl.Run()); got != want {
				t.Fatalf("trial %d (%s x%d scale=%.3f %v) with %d workers diverged:\n got: %s\nwant: %s",
					trial, name, nGPUs, scale, pol, w, got, want)
			}
		}
	}
}

// The cluster-wide engine metrics (sim.cycles, sim.events_fired) and the
// invariant-sweep machinery must agree between modes: the PDES run fires
// exactly the union of the sequential run's events and stops on the same
// barrier clock.
func TestParallelObservabilityMatchesSequential(t *testing.T) {
	const nGPUs = 4
	b, cfg := core.PrepareWorkload("ra", testScale, nGPUs, 125, config.PolicyAdaptive, config.Default())

	collect := func(workers int) (map[string]uint64, *Result) {
		c := cfg
		c.ClusterWorkers = workers
		cl := New(b, c, nGPUs)
		runs := make([]*obs.Run, 0, nGPUs)
		cl.Observe(func(idx int) *obs.Run {
			r := obs.Options{Metrics: true, CheckEvery: 50_000}.NewRun(fmt.Sprintf("gpu%d", idx))
			runs = append(runs, r)
			return r
		})
		res := cl.Run()
		snap := runs[0].Collect()
		return snap.Counters, res
	}

	seq, seqRes := collect(1)
	par, parRes := collect(nGPUs)
	if clusterCSV(seqRes) != clusterCSV(parRes) {
		t.Fatalf("observed runs diverged:\n%s\n%s", clusterCSV(seqRes), clusterCSV(parRes))
	}
	for _, key := range []string{"sim.cycles", "sim.events_fired"} {
		if seq[key] != par[key] {
			t.Errorf("%s: sequential %d, parallel %d", key, seq[key], par[key])
		}
	}
	for _, key := range []string{obs.MetricPDESSteps, obs.MetricPDESWorkers, obs.MetricPDESLookahead} {
		if par[key] == 0 {
			t.Errorf("parallel run did not publish %s", key)
		}
	}
	if _, ok := seq[obs.MetricPDESSteps]; ok {
		t.Errorf("sequential run published PDES metrics")
	}
}

// ClusterWorkers plumbing: <=1 (and single-GPU clusters) fall back to
// the shared-engine path, larger values clamp to the cluster size.
func TestClusterWorkerSelection(t *testing.T) {
	b, cfg := core.PrepareWorkload("bfs", 0.05, 2, 125, config.PolicyDisabled, config.Default())
	cases := []struct {
		workers, gpus, want int
	}{
		{0, 2, 1},
		{1, 2, 1},
		{2, 2, 2},
		{8, 2, 2}, // clamped to cluster size
		{4, 1, 1}, // single GPU is always sequential
	}
	for _, tc := range cases {
		c := cfg
		c.ClusterWorkers = tc.workers
		cl := New(b, c, tc.gpus)
		if got := cl.Workers(); got != tc.want {
			t.Errorf("ClusterWorkers=%d over %d GPUs: Workers() = %d, want %d",
				tc.workers, tc.gpus, got, tc.want)
		}
		if (cl.par != nil) != (tc.want > 1) {
			t.Errorf("ClusterWorkers=%d over %d GPUs: PDES mode = %v", tc.workers, tc.gpus, cl.par != nil)
		}
	}
	if err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("%v", r)
			}
		}()
		c := cfg
		c.ClusterWorkers = -1
		New(b, c, 2)
		return nil
	}(); err == nil {
		t.Error("negative ClusterWorkers did not fail validation")
	}
}
