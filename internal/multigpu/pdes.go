// Conservative parallel discrete-event execution (PDES) for cluster
// runs.
//
// # Model
//
// Every GPU+driver node owns a private sim.Engine; nodes share only
// immutable state (the allocation space and the built workload's
// kernels and graph data). Within a kernel, nodes interact with nothing
// but their own driver, device memory and PCIe link — cross-node
// influence exists solely through the bulk-synchronous kernel barrier.
// Each node's event stream is therefore independent of how the streams
// interleave, which is what makes the parallel run *byte-identical* to
// the sequential shared-engine run: the shared engine merely
// interleaves the same per-node streams by (cycle, seq) without
// changing any node's view.
//
// # Protocol
//
// The coordinator repeatedly computes the safe horizon — the minimum
// next-event time across nodes plus the model lookahead (one
// host-memory round trip over PCIe, the minimum cross-node interaction
// latency) — and has a fixed worker pool advance every node engine up
// to it with sim.DrainUntil (which never pads clocks). Cross-node
// effects are exchanged only with all workers parked, in fixed node
// order: kernel-barrier completion checks, barrier clock alignment
// (sim.AdvanceTo to the max last-event time, reproducing the shared
// engine's clock at launch), and cluster-wide obs invariant sweeps.
// Worker assignment is static (node i belongs to worker i mod W), so a
// node's engine is only ever touched by one goroutine per round, and
// the cmd/done channel pair orders every round's mutations before the
// coordinator's reads.
package multigpu

import (
	"fmt"

	"uvmsim/internal/gpu"
	"uvmsim/internal/obs"
	"uvmsim/internal/sim"
)

// Coordinator advances a set of private engines in lockstep horizon
// rounds. It is generic over engines, not cluster nodes: any model
// whose partitions interact no faster than the lookahead (multi-GPU
// kernels here, the CXL co-location scenarios in internal/cxl) can
// drive its engines through one. Exported methods must be called from
// a single goroutine; the Coordinator owns its worker pool.
type Coordinator struct {
	engines   []*sim.Engine
	workers   int
	lookahead sim.Cycle

	// cmd carries each round's drain deadline to one worker; done
	// returns one token per worker per round. Closing cmd stops the
	// pool. Channel hand-offs are the only synchronization: a send
	// happens-before the worker's drains, which happen-before its done
	// send, which happens-before the coordinator's next reads.
	cmd  []chan sim.Cycle
	done chan struct{}

	// Invariant sweep at horizon boundaries (Observe wires this).
	sweepEvery sim.Cycle
	sweepFn    func(sim.Cycle)
	sweepNext  sim.Cycle

	// Deterministic efficiency accounting (published via obs).
	steps  uint64 // horizon rounds completed
	stalls uint64 // node-rounds with no event inside the horizon
}

// NewCoordinator wires a coordinator over the engines; workers must be
// in [2, len(engines)] and lookahead positive.
func NewCoordinator(engines []*sim.Engine, workers int, lookahead sim.Cycle) *Coordinator {
	if workers < 2 || workers > len(engines) || lookahead == 0 {
		panic(fmt.Sprintf("multigpu: coordinator with %d workers over %d engines, lookahead %d",
			workers, len(engines), lookahead))
	}
	return &Coordinator{engines: engines, workers: workers, lookahead: lookahead}
}

// newCoordinator wires a Coordinator over cluster nodes.
func newCoordinator(nodes []*node, workers int, lookahead sim.Cycle) *Coordinator {
	engines := make([]*sim.Engine, len(nodes))
	for i, n := range nodes {
		engines[i] = n.eng
	}
	return NewCoordinator(engines, workers, lookahead)
}

// Start spawns the worker pool (one goroutine per worker, fixed engine
// assignment). Every Start is paired with a Stop.
func (co *Coordinator) Start() {
	if co.cmd != nil {
		panic("multigpu: coordinator already running")
	}
	co.cmd = make([]chan sim.Cycle, co.workers)
	co.done = make(chan struct{}, co.workers)
	for w := range co.cmd {
		co.cmd[w] = make(chan sim.Cycle)
		go co.worker(w)
	}
}

// Stop terminates the worker pool.
func (co *Coordinator) Stop() {
	for _, ch := range co.cmd {
		close(ch)
	}
	co.cmd = nil
	co.done = nil
}

// worker drains this worker's nodes to each commanded deadline until
// the command channel closes.
//
//sim:hotpath
func (co *Coordinator) worker(w int) {
	for deadline := range co.cmd[w] {
		for i := w; i < len(co.engines); i += co.workers {
			co.engines[i].DrainUntil(deadline)
		}
		co.done <- struct{}{}
	}
}

// SetSweep installs (or, with every == 0, removes) the horizon-boundary
// invariant sweep; mirrors sim.Engine.SetDaemon semantics.
func (co *Coordinator) SetSweep(every sim.Cycle, fn func(sim.Cycle)) {
	if (every == 0) != (fn == nil) {
		panic("multigpu: setSweep needs both a period and a function (or neither)")
	}
	co.sweepEvery, co.sweepFn = every, fn
	co.sweepNext = every
}

// Drain runs horizon rounds until every engine is empty. Each
// round advances all engines concurrently to min-next-event+lookahead,
// which can never violate causality: nothing a node does before the
// horizon can reach another node sooner than one interconnect round
// trip (and, in this model, not before the kernel barrier at all).
//
//sim:hotpath
func (co *Coordinator) Drain() {
	for {
		min := sim.MaxCycle
		any := false
		for _, e := range co.engines {
			if at, ok := e.NextEventAt(); ok && at < min {
				min = at
				any = true
			}
		}
		if !any {
			return
		}
		horizon := min + co.lookahead
		if horizon < min {
			horizon = sim.MaxCycle // saturate near the end of time
		}
		for _, e := range co.engines {
			if at, ok := e.NextEventAt(); !ok || at > horizon {
				co.stalls++
			}
		}
		co.steps++
		for _, ch := range co.cmd {
			ch <- horizon
		}
		for range co.cmd {
			<-co.done
		}
		co.maybeSweep()
	}
}

// maybeSweep fires the cluster-wide invariant sweep when at least
// sweepEvery cycles of simulated time have passed since the previous
// sweep. It runs on the coordinator goroutine with every worker parked,
// observing real post-round state in fixed node order, so — like the
// sequential engine daemon — it can never perturb results.
//
//sim:hotpath
func (co *Coordinator) maybeSweep() {
	if co.sweepEvery == 0 {
		return
	}
	var now sim.Cycle
	for _, e := range co.engines {
		if t := e.Now(); t > now {
			now = t
		}
	}
	if now >= co.sweepNext {
		co.sweepNext = now + co.sweepEvery
		co.sweepFn(now)
	}
}

// efficiency is the busy fraction of node-rounds — a deterministic,
// wall-clock-free proxy for parallel efficiency (identical across
// machines and worker counts, unlike a speedup measurement).
func (co *Coordinator) efficiency() float64 {
	total := co.steps * uint64(len(co.engines))
	if total == 0 {
		return 0
	}
	return 1 - float64(co.stalls)/float64(total)
}

// Publish registers the coordinator's efficiency metrics on the
// registry; values are read at collection time, after the run.
func (co *Coordinator) Publish(reg *obs.Registry) {
	reg.RegisterProvider(func(e obs.Emitter) {
		e.Counter(obs.MetricPDESSteps, co.steps)
		e.Counter(obs.MetricPDESHorizonStalls, co.stalls)
		e.Counter(obs.MetricPDESWorkers, uint64(co.workers))
		e.Counter(obs.MetricPDESLookahead, uint64(co.lookahead))
		e.Gauge(obs.MetricPDESEfficiency, co.efficiency())
	})
}

// runKernelParallel is RunKernel's PDES path: one bulk-synchronous
// kernel over per-node engines. The barrier after the kernel is the max
// last-event time across nodes — exactly the shared engine's clock
// after its drain — and every node clock is aligned to it before the
// next fixed-order launch round, so launches observe the same Now they
// would sequentially. The worker pool lives for exactly one kernel
// (Start/Stop bracket the call), which keeps every goroutine's shutdown
// provable from the call site and leaves the engines untouched between
// kernels — the quiescent window Fork snapshots from.
func (c *Cluster) runKernelParallel(k gpu.Kernel) {
	co := c.par
	co.Start()
	defer co.Stop()
	for idx, n := range c.nodes {
		sub, ok := splitKernel(k, len(c.nodes), idx)
		n.launched = ok
		n.finished = false
		if !ok {
			continue
		}
		n.g.Launch(sub, n.onKernelDone)
	}
	co.Drain() // also drains trailing prefetch transfers
	for idx, n := range c.nodes {
		if n.launched && !n.finished {
			panic(fmt.Sprintf("multigpu: kernel %s left gpu%d unfinished", k.Name, idx))
		}
	}
	var barrier sim.Cycle
	for _, n := range c.nodes {
		if n.eng.Now() > barrier {
			barrier = n.eng.Now()
		}
	}
	for _, n := range c.nodes {
		n.eng.AdvanceTo(barrier)
	}
}
