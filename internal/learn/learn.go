// Package learn implements the online-learning primitives behind the
// learned memory-management policies (internal/mm): a bounded
// reuse-distance estimator fed by the miss stream, a discretized
// epsilon-greedy bandit for threshold tuning, and the deterministic
// seeded RNG both draw from.
//
// Everything in this package is deterministic by construction: state
// evolves only from the caller-supplied input sequence and an explicit
// seed, never from wall-clock time, map iteration order or the global
// math/rand source. Two instances constructed with the same seed and
// fed the same sequence are bit-identical — which is what lets learned
// policies ride the repository's byte-identical determinism guarantee
// (see DESIGN.md §13).
//
// Arithmetic is integer-only. The bandit compares mean costs through
// 128-bit cross multiplication rather than floating-point division, so
// arm selection cannot depend on platform FMA contraction.
package learn

// rngMixSeed replaces a zero seed: an xorshift state of zero is a fixed
// point (the stream would be all zeros). The constant is the usual
// splitmix64 golden-ratio increment.
const rngMixSeed = 0x9E3779B97F4A7C15

// RNG is a small deterministic xorshift64* generator. The zero value is
// not usable; call NewRNG. It exists so learned policies never touch
// the global math/rand source (banned by simlint's wallclock analyzer)
// and so their draw sequence is part of the run's reproducible state.
type RNG struct {
	s uint64
}

// NewRNG returns a generator seeded with seed (a zero seed is remapped
// to a fixed non-zero constant).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = rngMixSeed
	}
	return &RNG{s: seed}
}

// Next returns the next 64-bit draw.
func (r *RNG) Next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a draw in [0, n). It panics when n is not positive. The
// modulo bias is irrelevant at the arm counts and exploration rates the
// policies use (n far below 2^32).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("learn: Intn on non-positive n")
	}
	return int(r.Next() % uint64(n))
}
