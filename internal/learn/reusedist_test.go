package learn

import "testing"

func TestReuseEstimatorBasicDistances(t *testing.T) {
	e := NewReuseEstimator(4)
	if _, ok := e.Touch(7); ok {
		t.Fatal("first touch reported a distance")
	}
	if d, ok := e.Touch(7); !ok || d != 1 {
		t.Fatalf("immediate re-touch = (%d, %v), want (1, true)", d, ok)
	}
	e.Touch(8)
	e.Touch(9)
	// History (newest last): 7 7 8 9. Touch 7 again: previous touch is 3
	// ticks back, still inside the 4-touch window.
	if d, ok := e.Touch(7); !ok || d != 3 {
		t.Fatalf("windowed re-touch = (%d, %v), want (3, true)", d, ok)
	}
}

func TestReuseEstimatorWindowEviction(t *testing.T) {
	e := NewReuseEstimator(3)
	e.Touch(1)
	e.Touch(2)
	e.Touch(3)
	e.Touch(4) // pushes 1 out of the 3-touch window
	if d, ok := e.Touch(1); ok {
		t.Fatalf("evicted block still visible at distance %d", d)
	}
	// A distance of exactly Cap is still inside the window.
	e2 := NewReuseEstimator(3)
	e2.Touch(1)
	e2.Touch(2)
	e2.Touch(3)
	if d, ok := e2.Touch(1); !ok || d != 3 {
		t.Fatalf("boundary re-touch = (%d, %v), want (3, true)", d, ok)
	}
}

func TestReuseEstimatorNearestOccurrenceWins(t *testing.T) {
	e := NewReuseEstimator(8)
	e.Touch(5)
	e.Touch(6)
	e.Touch(5)
	e.Touch(7)
	if d, ok := e.Touch(5); !ok || d != 2 {
		t.Fatalf("distance to nearest occurrence = (%d, %v), want (2, true)", d, ok)
	}
}

func TestReuseEstimatorBlockZeroIsNotPhantom(t *testing.T) {
	// The ring backing array is zero-valued; block 0 must not appear
	// touched before it actually is.
	e := NewReuseEstimator(4)
	if _, ok := e.Touch(0); ok {
		t.Fatal("fresh estimator reported a distance for block 0")
	}
	e.Touch(1)
	if d, ok := e.Touch(0); !ok || d != 2 {
		t.Fatalf("block 0 re-touch = (%d, %v), want (2, true)", d, ok)
	}
}

func TestReuseEstimatorAccessors(t *testing.T) {
	e := NewReuseEstimator(16)
	if e.Cap() != 16 {
		t.Fatalf("Cap = %d", e.Cap())
	}
	e.Touch(1)
	e.Touch(2)
	if e.Ticks() != 2 {
		t.Fatalf("Ticks = %d", e.Ticks())
	}
}

func TestReuseEstimatorRejectsBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewReuseEstimator(0)
}
