package learn

// ReuseEstimator estimates per-block reuse distances from a touch
// stream using a bounded ring of the most recent touches. It is
// allocation-free after construction: recording a touch writes one ring
// slot and scans at most Cap ring entries.
//
// The estimate is the touch-interval form of reuse distance: the number
// of touches recorded since the previous touch of the same block. It is
// defined purely by the touch history, independent of the ring
// implementation — the previous touch is visible if and only if it lies
// within the last Cap touches — which is what lets the fuzz harness
// check the ring against a brute-force full-history oracle
// (FuzzReuseEstimatorMatchesOracle).
//
// The miss-driven planners feed this with non-resident block accesses
// only, so a short distance means "this block keeps missing": exactly
// the population worth migrating, while blocks whose reuse distance
// exceeds the window are cheaper to serve remotely than to thrash.
type ReuseEstimator struct {
	ring []uint64
	tick uint64 // touches recorded so far; ring[t % Cap] holds touch t
}

// NewReuseEstimator returns an estimator remembering the last capacity
// touches. It panics when capacity is not positive.
func NewReuseEstimator(capacity int) *ReuseEstimator {
	if capacity <= 0 {
		panic("learn: reuse estimator capacity must be positive")
	}
	return &ReuseEstimator{ring: make([]uint64, capacity)}
}

// Cap returns the window size in touches.
func (e *ReuseEstimator) Cap() int { return len(e.ring) }

// Ticks returns the number of touches recorded.
func (e *ReuseEstimator) Ticks() uint64 { return e.tick }

// Touch records a touch of block b and returns the block's reuse
// distance: the number of touches since its previous touch, when that
// previous touch is among the last Cap touches (so dist is in
// [1, Cap]). ok is false when b was not touched within the window — a
// cold block, or one whose reuse distance exceeds the window.
func (e *ReuseEstimator) Touch(b uint64) (dist uint64, ok bool) {
	n := e.tick
	lo := uint64(0)
	if c := uint64(len(e.ring)); n > c {
		lo = n - c
	}
	// Scan newest to oldest so the nearest previous occurrence wins.
	for t := n; t > lo; t-- {
		if e.ring[(t-1)%uint64(len(e.ring))] == b {
			dist, ok = n-(t-1), true
			break
		}
	}
	e.ring[n%uint64(len(e.ring))] = b
	e.tick = n + 1
	return dist, ok
}
