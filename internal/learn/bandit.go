package learn

import (
	"math/bits"

	"uvmsim/internal/satmath"
)

// Bandit is a discretized epsilon-greedy multi-armed bandit minimizing
// mean cost (the policies feed cost, not reward: lower is better).
//
// Selection is epsilon-greedy with two deliberate asymmetries that make
// the learner's behaviour provable:
//
//   - Unpulled arms are reachable only through exploration. Greedy
//     selection considers pulled arms alone (ties break to the lowest
//     index), so with epsilonPct == 0 the bandit never leaves arm 0 —
//     which is how the bandit-ts planner collapses exactly to the
//     static configuration it starts from (the epsilon=0 golden test).
//   - Before any arm has been pulled, Select returns arm 0.
//
// Mean costs are compared by 128-bit cross multiplication
// (cost_i * pulls_j vs cost_j * pulls_i), never by division or
// floating point, so selection is exact and platform-independent.
type Bandit struct {
	pulls []uint64
	costs []uint64
	// epsilonPct is the exploration probability in percent [0, 100].
	epsilonPct uint64
	rng        *RNG
	explores   uint64
}

// NewBandit returns a bandit over arms arms exploring with probability
// epsilonPct percent, drawing from a generator seeded with seed. It
// panics when arms is not positive or epsilonPct exceeds 100.
func NewBandit(arms int, epsilonPct uint64, seed uint64) *Bandit {
	if arms <= 0 {
		panic("learn: bandit needs at least one arm")
	}
	if epsilonPct > 100 {
		panic("learn: bandit epsilon above 100%")
	}
	return &Bandit{
		pulls:      make([]uint64, arms),
		costs:      make([]uint64, arms),
		epsilonPct: epsilonPct,
		rng:        NewRNG(seed),
	}
}

// Arms returns the arm count.
func (b *Bandit) Arms() int { return len(b.pulls) }

// Pulls returns how many pulls arm i has recorded.
func (b *Bandit) Pulls(i int) uint64 { return b.pulls[i] }

// Explores returns how many selections were exploratory draws.
func (b *Bandit) Explores() uint64 { return b.explores }

// Reward records cost against arm i with the given pull weight. The
// planners feed one pull per epoch (weight 1); the prefetch governor
// feeds a pull at chunk-creation time and weight-0 incremental cost as
// faults accrue. Costs and pulls saturate instead of wrapping; at 2^64
// the history is long past meaningful anyway.
func (b *Bandit) Reward(i int, cost, weight uint64) {
	b.costs[i] = satmath.Add(b.costs[i], cost)
	b.pulls[i] = satmath.Add(b.pulls[i], weight)
}

// Select returns the next arm: with probability epsilonPct percent a
// uniformly random arm, otherwise the pulled arm with the lowest mean
// cost (ties to the lowest index), or arm 0 when nothing has been
// pulled yet.
func (b *Bandit) Select() int {
	if b.epsilonPct > 0 && b.rng.Next()%100 < b.epsilonPct {
		b.explores++
		return b.rng.Intn(len(b.pulls))
	}
	best, have := 0, false
	for i := range b.pulls {
		if b.pulls[i] == 0 {
			continue
		}
		if !have || meanLess(b.costs[i], b.pulls[i], b.costs[best], b.pulls[best]) {
			best, have = i, true
		}
	}
	return best
}

// meanLess reports cost_a/pulls_a < cost_b/pulls_b using 128-bit cross
// multiplication. Both pull counts are non-zero at every call site.
func meanLess(costA, pullsA, costB, pullsB uint64) bool {
	hiA, loA := bits.Mul64(costA, pullsB)
	hiB, loB := bits.Mul64(costB, pullsA)
	if hiA != hiB {
		return hiA < hiB
	}
	return loA < loB
}
