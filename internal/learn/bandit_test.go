package learn

import (
	"math"
	"testing"
)

func TestBanditGreedyPicksLowestMeanCost(t *testing.T) {
	b := NewBandit(3, 0, 1)
	b.Reward(0, 100, 10) // mean 10
	b.Reward(1, 18, 3)   // mean 6
	b.Reward(2, 7, 1)    // mean 7
	if got := b.Select(); got != 1 {
		t.Fatalf("Select = %d, want 1", got)
	}
}

func TestBanditGreedyTieBreaksToLowestIndex(t *testing.T) {
	b := NewBandit(3, 0, 1)
	b.Reward(1, 5, 1)
	b.Reward(2, 5, 1)
	if got := b.Select(); got != 1 {
		t.Fatalf("tied Select = %d, want 1 (lowest pulled index)", got)
	}
}

func TestBanditEpsilonZeroNeverLeavesArmZero(t *testing.T) {
	// The epsilon=0 contract behind the golden regression: arm 0 is the
	// initial arm, and without exploration no other arm is ever pulled,
	// however bad arm 0's cost becomes.
	b := NewBandit(4, 0, 99)
	if got := b.Select(); got != 0 {
		t.Fatalf("initial Select = %d, want 0", got)
	}
	for i := 0; i < 1000; i++ {
		b.Reward(0, math.MaxUint64, 1) // saturating, maximally bad
		if got := b.Select(); got != 0 {
			t.Fatalf("Select after %d bad epochs = %d, want 0", i+1, got)
		}
	}
	if b.Explores() != 0 {
		t.Fatalf("epsilon=0 bandit explored %d times", b.Explores())
	}
}

func TestBanditExplorationIsSeededAndDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		b := NewBandit(5, 50, seed)
		var picks []int
		for i := 0; i < 200; i++ {
			arm := b.Select()
			b.Reward(arm, uint64(arm)+1, 1)
			picks = append(picks, arm)
		}
		return picks
	}
	a, bb := run(7), run(7)
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("same seed diverged at pull %d: %d vs %d", i, a[i], bb[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-pull sequences")
	}
}

func TestBanditExplorationFindsBetterArm(t *testing.T) {
	// Arm 2 is strictly cheapest; with exploration on, greedy pulls must
	// converge to it.
	b := NewBandit(3, 20, 3)
	cost := []uint64{9, 5, 1}
	last := -1
	for i := 0; i < 500; i++ {
		arm := b.Select()
		b.Reward(arm, cost[arm], 1)
		last = arm
	}
	_ = last
	var best int
	var bestPulls uint64
	for i := 0; i < b.Arms(); i++ {
		if b.Pulls(i) > bestPulls {
			best, bestPulls = i, b.Pulls(i)
		}
	}
	if best != 2 {
		t.Fatalf("most-pulled arm = %d (pulls %v), want 2", best, []uint64{b.Pulls(0), b.Pulls(1), b.Pulls(2)})
	}
	if b.Explores() == 0 {
		t.Fatal("bandit with epsilon=20%% never explored")
	}
}

func TestBanditMeanComparisonIsExactAtLargeMagnitudes(t *testing.T) {
	// Cross multiplication must not lose precision where float64 would:
	// means 2^60/1 vs (2^60+1)/1 differ by 1 ulp-of-integer but compare
	// exactly.
	b := NewBandit(2, 0, 1)
	b.Reward(0, 1<<60+1, 1)
	b.Reward(1, 1<<60, 1)
	if got := b.Select(); got != 1 {
		t.Fatalf("Select = %d, want 1", got)
	}
	if !meanLess(1<<60, 1, 1<<60+1, 1) {
		t.Fatal("meanLess lost a unit at 2^60")
	}
	if meanLess(1<<60, 1, 1<<60, 1) {
		t.Fatal("meanLess reported a strict inequality for equal means")
	}
}

func TestBanditRewardSaturates(t *testing.T) {
	b := NewBandit(1, 0, 1)
	b.Reward(0, math.MaxUint64, math.MaxUint64)
	b.Reward(0, 1, 1)
	if b.Pulls(0) != math.MaxUint64 {
		t.Fatalf("pulls wrapped to %d", b.Pulls(0))
	}
}

func TestBanditConstructorValidation(t *testing.T) {
	for _, tc := range []struct {
		arms int
		eps  uint64
	}{{0, 10}, {3, 101}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewBandit(%d, %d) did not panic", tc.arms, tc.eps)
				}
			}()
			NewBandit(tc.arms, tc.eps, 1)
		}()
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Next() == 0 && r.Next() == 0 {
		t.Fatal("zero-seeded RNG is stuck at zero")
	}
	a, b := NewRNG(0), NewRNG(rngMixSeed)
	for i := 0; i < 10; i++ {
		if a.Next() != b.Next() {
			t.Fatal("zero seed does not remap to the documented constant")
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}
