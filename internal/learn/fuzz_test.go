// Fuzz harness for the reuse-distance estimator, in an external test
// package so the seed corpus can be captured from real simulator fault
// traces (importing internal/core from package learn would be a cycle:
// core -> mm -> learn).
package learn_test

import (
	"encoding/binary"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/learn"
	"uvmsim/internal/memunits"
	"uvmsim/internal/sim"
	"uvmsim/internal/uvm"
)

// faultTrace captures the far-fault block sequence of a small run of
// the named workload — the exact stream the reuse-dist planner feeds
// the estimator in production — encoded as little-endian uint16 block
// numbers for the fuzz corpus.
func faultTrace(name string, scale float64) []byte {
	b, cfg := core.PrepareWorkload(name, scale, 1, 125, config.PolicyAdaptive, config.Default())
	s := core.New(b, cfg)
	var buf []byte
	s.SetObserver(func(_ sim.Cycle, addr memunits.Addr, _ bool, kind uvm.AccessKind) {
		if kind != uvm.AccessFault {
			return
		}
		var enc [2]byte
		binary.LittleEndian.PutUint16(enc[:], uint16(memunits.BlockOf(addr)))
		buf = append(buf, enc[:]...)
	})
	s.Run()
	return buf
}

// FuzzReuseEstimatorMatchesOracle checks the bounded ring against a
// brute-force full-history oracle. The estimator's contract is defined
// by the touch history alone: the previous touch of a block is visible
// if and only if it lies within the last Cap touches, and the reported
// distance is the touch count since it (so dist is in [1, Cap]). The
// oracle keeps the entire history and searches it newest-to-oldest, so
// any ring bug — wraparound off-by-one, phantom zero-value hits, stale
// slot reuse — shows up as a divergence.
func FuzzReuseEstimatorMatchesOracle(f *testing.F) {
	for _, w := range []string{"bfs", "ra"} {
		tr := faultTrace(w, 0.02)
		if len(tr) > 4096 {
			tr = tr[:4096]
		}
		if len(tr) == 0 {
			f.Fatalf("workload %s produced no fault trace; corpus would be empty", w)
		}
		f.Add(uint8(8), tr)
		f.Add(uint8(64), tr)
	}
	// Hand-written adversarial seeds: capacity 1, block 0 (the ring's
	// zero value), and an immediate-repeat pattern.
	f.Add(uint8(0), []byte{0, 0, 0, 0, 1, 0, 0, 0})
	f.Add(uint8(1), []byte{7, 0, 7, 0, 7, 0})

	f.Fuzz(func(t *testing.T, capByte uint8, data []byte) {
		capacity := int(capByte)%64 + 1
		est := learn.NewReuseEstimator(capacity)
		var history []uint64
		for i := 0; i+1 < len(data); i += 2 {
			b := uint64(binary.LittleEndian.Uint16(data[i : i+2]))
			gotDist, gotOK := est.Touch(b)

			var wantDist uint64
			wantOK := false
			for prev := len(history) - 1; prev >= 0; prev-- {
				if history[prev] == b {
					d := uint64(len(history) - prev)
					if d <= uint64(capacity) {
						wantDist, wantOK = d, true
					}
					break
				}
			}
			if gotDist != wantDist || gotOK != wantOK {
				t.Fatalf("touch %d of block %d (cap %d): ring says (%d,%t), oracle says (%d,%t)",
					len(history), b, capacity, gotDist, gotOK, wantDist, wantOK)
			}
			history = append(history, b)
		}
		if est.Ticks() != uint64(len(history)) {
			t.Fatalf("Ticks() = %d after %d touches", est.Ticks(), len(history))
		}
	})
}
