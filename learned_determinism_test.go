package uvmsim

import (
	"fmt"
	"testing"

	"uvmsim/internal/mm"
)

// TestPipelineCombinationsDeterministic is the property test behind the
// learned-policy work: EVERY registered planner x prefetch-governor
// combination, run twice with the same seed, must produce byte-identical
// results — same simulated cycles, same fault counts, same spans. The
// matrix is enumerated from the mm registry, so a newly registered stage
// is property-tested the moment it exists. CI runs this under -race,
// where the ClusterWorkers variant below additionally drags the learned
// stages through the PDES worker pool.
func TestPipelineCombinationsDeterministic(t *testing.T) {
	for _, planner := range mm.PlannerNames() {
		for _, governor := range mm.PrefetchGovernorNames() {
			t.Run(planner+"/"+governor, func(t *testing.T) {
				run := func() *Result {
					cfg := DefaultConfig()
					cfg.Penalty = 8
					cfg.MMPipeline.Planner = planner
					cfg.MMPipeline.Prefetcher = governor
					return RunWorkload("ra", 0.2, 125, PolicyAdaptive, cfg)
				}
				a, b := run(), run()
				if a.Counters != b.Counters {
					t.Fatalf("counters differ across identical runs:\n%+v\n%+v", a.Counters, b.Counters)
				}
				if len(a.Spans) != len(b.Spans) {
					t.Fatalf("span counts differ: %d vs %d", len(a.Spans), len(b.Spans))
				}
				for i := range a.Spans {
					if a.Spans[i] != b.Spans[i] {
						t.Fatalf("span %d differs: %+v vs %+v", i, a.Spans[i], b.Spans[i])
					}
				}
				if a.Runtime() == 0 || a.Counters.FarFaults == 0 {
					t.Fatalf("combination did no observable work: %+v", a.Counters)
				}
			})
		}
	}
}

// TestLearnedPipelineDeterministicInCluster repeats the determinism
// property for the learned stages inside a parallel multi-GPU cluster:
// with ClusterWorkers=2 the PDES scheduler interleaves node execution
// across threads, and the learned planners' per-driver state must stay
// isolated — any cross-driver sharing shows up as a counter diff here
// (and as a data race under -race).
func TestLearnedPipelineDeterministicInCluster(t *testing.T) {
	for _, planner := range []string{"reuse-dist", "bandit-ts"} {
		t.Run(planner, func(t *testing.T) {
			run := func(workers int) string {
				cfg := DefaultConfig()
				cfg.Penalty = 8
				cfg.ClusterWorkers = workers
				cfg.MMPipeline.Planner = planner
				cfg.MMPipeline.Prefetcher = "bandit-pf"
				res := RunCluster("ra", 0.2, 2, 125, PolicyAdaptive, cfg)
				return fmt.Sprintf("%d %+v", res.Cycles, res.PerGPU)
			}
			parallel := run(2)
			if again := run(2); again != parallel {
				t.Fatalf("parallel cluster runs differ:\n%s\n%s", parallel, again)
			}
			// The PDES path must also agree with the sequential path —
			// the cluster's standing byte-identical equivalence claim.
			if sequential := run(0); sequential != parallel {
				t.Fatalf("sequential and PDES cluster runs differ:\n%s\n%s", sequential, parallel)
			}
		})
	}
}

// TestLearnedSeedSensitivity pins that PolicySeed is live end-to-end:
// a reuse-dist run under heavy oversubscription must change observable
// behaviour when only the seed changes (if it never did, the seeded
// exploration would be dead wiring).
func TestLearnedSeedSensitivity(t *testing.T) {
	run := func(seed uint64) uint64 {
		cfg := DefaultConfig()
		cfg.Penalty = 8
		cfg.PolicySeed = seed
		cfg.MMPipeline.Planner = "reuse-dist"
		return RunWorkload("ra", 0.3, 150, PolicyAdaptive, cfg).Runtime()
	}
	base := run(1)
	for seed := uint64(2); seed <= 8; seed++ {
		if run(seed) != base {
			return
		}
	}
	t.Fatal("runtime identical across seeds 1..8: PolicySeed is not reaching the learned planner")
}
