// Multi-GPU throttling: the paper's proposed future work (§VIII) —
// running a collaborative irregular workload across a GPU cluster and
// using the dynamic-threshold heuristic to throttle each GPU's memory
// and cut thrashing.
//
// Each kernel is split into contiguous CTA ranges across the GPUs
// (bulk-synchronous execution); every GPU has its own device memory and
// PCIe link, and its Adaptive threshold responds to local occupancy.
//
// With -cluster-workers N > 1 each cluster runs under the conservative
// parallel discrete-event coordinator (DESIGN.md §12); the results are
// byte-identical to the sequential default, only wall clock changes.
//
//	go run ./examples/multigpu-throttling [-workload ra] [-oversub 125] [-cluster-workers 4]
package main

import (
	"flag"
	"fmt"

	"uvmsim"
)

func main() {
	workload := flag.String("workload", "ra", "collaborative workload")
	oversub := flag.Uint64("oversub", 125, "per-GPU working-set share as % of per-GPU memory")
	scale := flag.Float64("scale", 0.4, "workload scale factor")
	clusterWorkers := flag.Int("cluster-workers", 0, "PDES worker threads per cluster run (0 or 1 = sequential; results are identical either way)")
	flag.Parse()

	fmt.Printf("=== %s across GPU clusters at %d%% per-GPU oversubscription ===\n\n", *workload, *oversub)
	fmt.Printf("%5s %10s %16s %14s %14s %14s\n",
		"GPUs", "policy", "makespanCycles", "thrashedPages", "remoteAccesses", "speedup")

	for _, n := range []int{1, 2, 4} {
		var baseCycles uint64
		for _, pol := range []uvmsim.MigrationPolicy{uvmsim.PolicyDisabled, uvmsim.PolicyAdaptive} {
			cfg := uvmsim.DefaultConfig()
			cfg.Penalty = 8
			cfg.ClusterWorkers = *clusterWorkers
			res := uvmsim.RunCluster(*workload, *scale, n, *oversub, pol, cfg)
			if pol == uvmsim.PolicyDisabled {
				baseCycles = res.Cycles
			}
			fmt.Printf("%5d %10v %16d %14d %14d %13.2fx\n",
				n, pol, res.Cycles, res.TotalThrashedPages(), res.TotalRemoteAccesses(),
				float64(baseCycles)/float64(res.Cycles))
		}
	}

	fmt.Println("\nWithin every cluster size, the Adaptive threshold throttles page")
	fmt.Println("migration per GPU: cold pages stay host-pinned, thrashing collapses,")
	fmt.Println("and the collaborative makespan drops — the paper's future-work claim.")
}
