// Policy comparison: run one workload under all four delayed-migration
// schemes (Disabled, Always, Oversub, Adaptive) at a chosen level of
// oversubscription, and report runtime plus the memory-system behaviour
// that explains it — a per-workload slice of the paper's Figures 6 and 7.
//
//	go run ./examples/policy-comparison [-workload bfs] [-oversub 125] [-p 8]
package main

import (
	"flag"
	"fmt"
	"strings"

	"uvmsim"
)

func main() {
	workload := flag.String("workload", "bfs", "workload: "+strings.Join(uvmsim.Workloads(), ", "))
	oversub := flag.Uint64("oversub", 125, "working set as % of device memory")
	scale := flag.Float64("scale", 0.5, "workload scale factor")
	penalty := flag.Uint64("p", 8, "multiplicative migration penalty (Adaptive)")
	flag.Parse()

	fmt.Printf("=== %s at %d%% oversubscription, ts=8, p=%d ===\n\n", *workload, *oversub, *penalty)
	fmt.Printf("%-10s %14s %11s %10s %10s %10s %12s\n",
		"policy", "cycles", "normalized", "faults", "thrashed", "remote", "pcieBytes")

	var base uint64
	for _, pol := range uvmsim.Policies() {
		cfg := uvmsim.DefaultConfig()
		cfg.Penalty = *penalty
		res := uvmsim.RunWorkload(*workload, *scale, *oversub, pol, cfg)
		if base == 0 {
			base = res.Runtime()
		}
		c := res.Counters
		fmt.Printf("%-10v %14d %10.1f%% %10d %10d %10d %12d\n",
			pol, res.Runtime(), 100*float64(res.Runtime())/float64(base),
			c.FarFaults, c.ThrashedPages, c.RemoteAccesses(), c.H2DBytes+c.D2HBytes)
	}

	fmt.Println()
	fmt.Println("Disabled = first-touch migration (state-of-the-art baseline, LRU eviction)")
	fmt.Println("Always   = static threshold from the start (Volta behaviour, LFU eviction)")
	fmt.Println("Oversub  = static threshold enabled only after oversubscription")
	fmt.Println("Adaptive = the paper's dynamic threshold td (Equation 1)")
}
