// Hints vs Adaptive: reproduces the workflow the paper argues against
// (§III-C) and compares it with the paper's programmer-agnostic policy.
//
// The manual workflow: profile the workload to find cold allocations,
// then hard-pin them to host memory with cudaMemAdvise-style hints and
// rerun. The Adaptive dynamic threshold reaches a similar placement with
// no profiling and no source changes.
//
//	go run ./examples/hints-vs-adaptive [-workload bfs] [-scale 0.4]
package main

import (
	"flag"
	"fmt"

	"uvmsim"
	"uvmsim/internal/experiments"
)

func main() {
	workload := flag.String("workload", "bfs", "irregular workload to study")
	scale := flag.Float64("scale", 0.4, "workload scale factor")
	flag.Parse()

	opt := uvmsim.ExperimentOptions{Scale: *scale}

	// Step 1 — the profiling pass a developer would need.
	cold := experiments.ProfileColdAllocations(*workload, opt)
	fmt.Printf("profiling %s: cold allocations = %v\n\n", *workload, cold)

	// Step 2 — baseline, manually hinted, and Adaptive runs at 125%.
	base := uvmsim.RunWorkload(*workload, *scale, 125, uvmsim.PolicyDisabled, uvmsim.DefaultConfig())

	b := uvmsim.BuildWorkload(*workload, *scale)
	cfg := uvmsim.DefaultConfig().WithOversubscription(b.WorkingSet(), 125)
	s := uvmsim.New(b, cfg)
	for _, a := range b.Space.Allocations() {
		for _, name := range cold {
			if a.Name == name {
				s.Driver.Advise(a, uvmsim.AdvicePinHost)
			}
		}
	}
	hinted := s.Run()

	acfg := uvmsim.DefaultConfig()
	acfg.Penalty = 8
	adaptive := uvmsim.RunWorkload(*workload, *scale, 125, uvmsim.PolicyAdaptive, acfg)

	fmt.Printf("%-28s %14s %12s %14s\n", "configuration", "cycles", "normalized", "thrashedPages")
	for _, row := range []struct {
		name string
		res  *uvmsim.Result
	}{
		{"baseline (first touch)", base},
		{"baseline + profiled hints", hinted},
		{"Adaptive (no hints)", adaptive},
	} {
		fmt.Printf("%-28s %14d %11.1f%% %14d\n",
			row.name, row.res.Runtime(),
			100*float64(row.res.Runtime())/float64(base.Runtime()),
			row.res.Counters.ThrashedPages)
	}
	fmt.Println("\nThe hand-tuned hints need a profiling pass per input; the Adaptive")
	fmt.Println("policy gets comparable placement automatically (paper §IV).")
}
