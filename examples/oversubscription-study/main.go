// Oversubscription study: sweep the degree of memory oversubscription
// for one regular and one irregular workload under the baseline policy,
// reproducing the sensitivity analysis of the paper's Figure 1 — regular
// applications degrade modestly (write-back bound) while irregular ones
// fall off a cliff (thrash bound).
//
//	go run ./examples/oversubscription-study [-scale 0.5]
package main

import (
	"flag"
	"fmt"

	"uvmsim"
)

func main() {
	scale := flag.Float64("scale", 0.5, "workload scale factor")
	flag.Parse()

	points := []uint64{100, 110, 125, 150}
	for _, workload := range []string{"fdtd", "ra"} {
		kind := "irregular"
		if uvmsim.IsRegular(workload) {
			kind = "regular"
		}
		fmt.Printf("=== %s (%s) ===\n", workload, kind)
		fmt.Printf("%-10s %14s %12s %14s %14s\n", "oversub", "cycles", "normalized", "thrashedPages", "writtenBack")

		var base uint64
		for _, pct := range points {
			res := uvmsim.RunWorkload(workload, *scale, pct, uvmsim.PolicyDisabled, uvmsim.DefaultConfig())
			if pct == 100 {
				base = res.Runtime()
			}
			fmt.Printf("%9d%% %14d %11.2fx %14d %14d\n",
				pct, res.Runtime(), float64(res.Runtime())/float64(base),
				res.Counters.ThrashedPages, res.Counters.WrittenBackPages)
		}
		fmt.Println()
	}
	fmt.Println("Note how the irregular workload degrades by a much larger factor at the")
	fmt.Println("same oversubscription level — the page-thrashing problem the Adaptive")
	fmt.Println("policy addresses (see examples/policy-comparison).")
}
