// Quickstart: run one irregular workload (sssp) under the first-touch
// baseline and under the paper's Adaptive policy at 125% memory
// oversubscription, and compare runtime and thrashing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"uvmsim"
)

func main() {
	const (
		workload = "sssp"
		scale    = 0.5 // half the paper's working-set size: runs in seconds
		oversub  = 125 // working set is 125% of device memory
	)

	fmt.Printf("=== %s at %d%% oversubscription (scale %.2f) ===\n\n", workload, oversub, scale)

	baseline := uvmsim.RunWorkload(workload, scale, oversub, uvmsim.PolicyDisabled, uvmsim.DefaultConfig())
	fmt.Printf("Baseline (first-touch migration):\n  %s\n\n", baseline.Counters.String())

	cfg := uvmsim.DefaultConfig()
	cfg.Penalty = 8 // the paper's Fig. 6 setting
	adaptive := uvmsim.RunWorkload(workload, scale, oversub, uvmsim.PolicyAdaptive, cfg)
	fmt.Printf("Adaptive (dynamic threshold, ts=8, p=8):\n  %s\n\n", adaptive.Counters.String())

	speedup := float64(baseline.Runtime()) / float64(adaptive.Runtime())
	thrashCut := 1 - float64(adaptive.Counters.ThrashedPages)/float64(baseline.Counters.ThrashedPages)
	fmt.Printf("Adaptive speedup over baseline: %.2fx\n", speedup)
	fmt.Printf("Thrashing reduced by:           %.1f%%\n", thrashCut*100)
	fmt.Printf("Remote zero-copy accesses:      %d (baseline has none)\n", adaptive.Counters.RemoteAccesses())
}
