// Custom workload: build a new benchmark against the public API — a
// hot/cold mix in the spirit of the paper's irregular-application
// characterization (§III-B) — and evaluate it under the baseline and
// Adaptive policies.
//
// The workload has two managed allocations:
//   - "hot": a small array swept densely and repeatedly (high access
//     frequency per 64KB basic block), and
//   - "cold": a large array probed sparsely at random (a handful of
//     accesses per block over the whole run).
//
// Under oversubscription the Adaptive policy should keep the hot array
// device-resident and serve the cold probes by remote zero-copy access,
// while the first-touch baseline thrashes.
//
//	go run ./examples/custom-workload
package main

import (
	"fmt"

	"uvmsim"
)

// probeProgram issues random read probes into the cold array followed by
// a dense read-modify-write pass over a slice of the hot array.
type probeProgram struct {
	cold, hot *uvmsim.Allocation
	probes    []uint64 // element indices into cold
	hotLo     uint64   // hot element range [hotLo, hotHi)
	hotHi     uint64
	pos       int
	hotPos    uint64
	phaseHot  bool
	writeHalf bool
}

// Next implements uvmsim.WarpProgram.
func (p *probeProgram) Next(in *uvmsim.Instr) bool {
	const lanes = 32
	if !p.phaseHot {
		if p.pos >= len(p.probes) {
			p.phaseHot = true
			p.hotPos = p.hotLo
			return p.Next(in)
		}
		n := len(p.probes) - p.pos
		if n > lanes {
			n = lanes
		}
		in.Compute = 4
		in.Write = false
		in.NumAddrs = n
		for i := 0; i < n; i++ {
			in.Addrs[i] = p.cold.Addr(p.probes[p.pos+i] * 4)
		}
		p.pos += n
		return true
	}
	if p.hotPos >= p.hotHi {
		return false
	}
	end := p.hotPos + lanes
	if end > p.hotHi {
		end = p.hotHi
	}
	in.Compute = 2
	in.Write = p.writeHalf
	in.NumAddrs = int(end - p.hotPos)
	for i := p.hotPos; i < end; i++ {
		in.Addrs[i-p.hotPos] = p.hot.Addr(i * 4)
	}
	if p.writeHalf {
		p.hotPos = end
	}
	p.writeHalf = !p.writeHalf
	return true
}

// buildHotCold assembles the workload: iterations of a kernel whose
// warps probe the cold array sparsely and then sweep a share of the hot
// array densely.
func buildHotCold() *uvmsim.Workload {
	const (
		coldElems  = 8 << 20 // 32MB cold array
		hotElems   = 1 << 20 // 4MB hot array
		iterations = 6
		warpsTotal = 512
		// probesPer keeps the cold array genuinely cold: ~48 accesses
		// per 64KB basic block over the whole run, below the Adaptive
		// oversubscription threshold ts*p = 64, so cold probes stay
		// remote while the baseline keeps faulting them in.
		probesPer = 8
	)
	space := uvmsim.NewSpace()
	cold := space.Alloc("cold", coldElems*4, true)
	hot := space.Alloc("hot", hotElems*4, false)

	seed := uint64(0xC01D)
	rand := func() uint64 { // xorshift64
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		return seed
	}

	hotPerWarp := uint64(hotElems / warpsTotal)
	var kernels []uvmsim.Kernel
	var iterOf []int
	for it := 1; it <= iterations; it++ {
		// Pre-generate each warp's random probes for determinism.
		probes := make([][]uint64, warpsTotal)
		for w := range probes {
			ps := make([]uint64, probesPer)
			for i := range ps {
				ps[i] = rand() % coldElems
			}
			probes[w] = ps
		}
		kernels = append(kernels, uvmsim.Kernel{
			Name:        fmt.Sprintf("hotcold_i%d", it),
			CTAs:        warpsTotal / 8,
			WarpsPerCTA: 8,
			NewWarp: func(cta, w int) uvmsim.WarpProgram {
				wi := uint64(cta*8 + w)
				return &probeProgram{
					cold:   cold,
					hot:    hot,
					probes: probes[wi],
					hotLo:  wi * hotPerWarp,
					hotHi:  (wi + 1) * hotPerWarp,
				}
			},
		})
		iterOf = append(iterOf, it)
	}
	return &uvmsim.Workload{
		Name:    "hotcold",
		Regular: false,
		Space:   space,
		Kernels: kernels,
		IterOf:  iterOf,
	}
}

func main() {
	w := buildHotCold()
	fmt.Printf("custom workload %q: working set %d MB, %d kernels\n\n",
		w.Name, w.WorkingSet()>>20, len(w.Kernels))

	for _, pol := range []uvmsim.MigrationPolicy{uvmsim.PolicyDisabled, uvmsim.PolicyAdaptive} {
		cfg := uvmsim.DefaultConfig().WithPolicy(pol)
		cfg.Penalty = 8
		cfg = cfg.WithOversubscription(w.WorkingSet(), 125)
		res := uvmsim.Run(w, cfg)
		fmt.Printf("%-10v %s\n", pol, res.Counters.String())
	}
	fmt.Println("\nAdaptive keeps the hot array local and probes the cold array remotely,")
	fmt.Println("eliminating most of the baseline's page thrashing.")
}
