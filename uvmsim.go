// Package uvmsim is the public API of the GPU Unified-Memory simulator
// reproducing "Adaptive Page Migration for Irregular Data-intensive
// Applications under GPU Memory Oversubscription" (Ganguly, Zhang, Yang,
// Melhem — IPDPS 2020).
//
// The simulator models a Pascal-class GPU (SMs, warps, coalescing), the
// CUDA Unified Memory driver (far-fault batching, the tree-based
// prefetcher, 2MB LRU eviction), a full-duplex PCIe link, Volta-style
// per-64KB access counters, remote zero-copy access, and the paper's
// contribution: the Adaptive dynamic migration threshold
//
//	td = ts * allocatedPages/totalPages + 1   (no oversubscription)
//	td = ts * (r + 1) * p                     (after oversubscription)
//
// together with an access-counter-driven LFU replacement policy.
//
// # Quick start
//
//	b := uvmsim.BuildWorkload("sssp", 1.0)
//	cfg := uvmsim.DefaultConfig().
//		WithPolicy(uvmsim.PolicyAdaptive).
//		WithOversubscription(b.WorkingSet(), 125)
//	res := uvmsim.Run(b, cfg)
//	fmt.Println(res.Counters.String())
//
// The experiments subpackage entry points (Fig1 … Fig8, Table1)
// regenerate every figure and table of the paper's evaluation; see
// EXPERIMENTS.md for measured-versus-paper results.
package uvmsim

import (
	"uvmsim/internal/alloc"
	"uvmsim/internal/config"
	"uvmsim/internal/core"
	"uvmsim/internal/experiments"
	"uvmsim/internal/gpu"
	"uvmsim/internal/multigpu"
	"uvmsim/internal/report"
	"uvmsim/internal/stats"
	"uvmsim/internal/uvm"
	"uvmsim/internal/workloads"
)

// Core configuration and result types.
type (
	// Config is the simulated-system configuration (Table I).
	Config = config.Config
	// MigrationPolicy selects the delayed-migration scheme.
	MigrationPolicy = config.MigrationPolicy
	// ReplacementPolicy selects LRU or counter-driven LFU eviction.
	ReplacementPolicy = config.ReplacementPolicy
	// PrefetcherKind selects the hardware prefetcher model.
	PrefetcherKind = config.PrefetcherKind
	// Result is the outcome of one simulation run.
	Result = core.Result
	// KernelSpan is one kernel launch's timing window.
	KernelSpan = core.KernelSpan
	// Counters are the raw metrics of a run.
	Counters = stats.Counters
	// Simulator couples a workload with a configuration; use New for
	// fine-grained control (tracing, stepping), or Run for one-shot runs.
	Simulator = core.Simulator
)

// Workload-construction types, exported so downstream users can build
// custom workloads against the simulator (see examples/custom-workload).
type (
	// Workload is an instantiated benchmark ready to simulate.
	Workload = workloads.Built
	// Space is a managed virtual address space (cudaMallocManaged model).
	Space = alloc.Space
	// Allocation is one managed allocation.
	Allocation = alloc.Allocation
	// Kernel describes one kernel launch.
	Kernel = gpu.Kernel
	// Instr is one warp instruction.
	Instr = gpu.Instr
	// WarpProgram generates a warp's instruction stream.
	WarpProgram = gpu.WarpProgram
)

// Migration policy constants (the four schemes of §VI).
const (
	PolicyDisabled = config.PolicyDisabled
	PolicyAlways   = config.PolicyAlways
	PolicyOversub  = config.PolicyOversub
	PolicyAdaptive = config.PolicyAdaptive
)

// Replacement policy constants.
const (
	ReplaceLRU = config.ReplaceLRU
	ReplaceLFU = config.ReplaceLFU
)

// Prefetcher constants.
const (
	PrefetchTree       = config.PrefetchTree
	PrefetchNone       = config.PrefetchNone
	PrefetchSequential = config.PrefetchSequential
)

// Advice mirrors the cudaMemAdvise-style hints of §III-C; attach hints
// with Simulator.Driver.Advise before running (see
// examples/hints-vs-adaptive).
type Advice = uvm.Advice

// Advice constants.
const (
	AdviceNone       = uvm.AdviceNone
	AdvicePreferHost = uvm.AdvicePreferHost
	AdvicePinHost    = uvm.AdvicePinHost
)

// DefaultConfig returns the boldface Table I configuration.
func DefaultConfig() Config { return config.Default() }

// PresetConfig returns a named architecture preset ("pascal" = Table I
// default, "volta" = V100-class).
func PresetConfig(name string) (Config, error) { return config.Preset(name) }

// NewSpace returns an empty managed address space for custom workloads.
func NewSpace() *Space { return alloc.NewSpace() }

// Policies lists the four migration policies in the paper's order.
func Policies() []MigrationPolicy { return config.Policies() }

// Workloads returns all benchmark names in the paper's order:
// backprop, fdtd, hotspot, srad (regular); bfs, nw, ra, sssp (irregular).
func Workloads() []string { return workloads.Names() }

// RegularWorkloads returns the four regular benchmark names.
func RegularWorkloads() []string { return workloads.RegularNames() }

// IrregularWorkloads returns the four irregular benchmark names.
func IrregularWorkloads() []string { return workloads.IrregularNames() }

// ExtraWorkloads returns the additional workloads shipped beyond the
// paper's suite (spatter, pointerchase); they are buildable through
// BuildWorkload but excluded from the figure sweeps.
func ExtraWorkloads() []string { return workloads.ExtraNames() }

// AllWorkloads returns the paper workloads followed by the extras.
func AllWorkloads() []string { return workloads.AllNames() }

// IsRegular reports the paper's classification of a workload.
func IsRegular(name string) bool { return workloads.IsRegular(name) }

// BuildWorkload instantiates a named benchmark at the given scale
// (1.0 = paper size, tens of MB of working set). It panics on unknown
// names; use Workloads for the valid set.
func BuildWorkload(name string, scale float64) *Workload {
	return workloads.MustGet(name)(scale)
}

// New creates a Simulator for a workload under a configuration.
func New(w *Workload, cfg Config) *Simulator { return core.New(w, cfg) }

// Run simulates the workload under the configuration and returns the
// result.
func Run(w *Workload, cfg Config) *Result { return core.Run(w, cfg) }

// RunWorkload builds the named workload at scale, sizes device memory so
// the working set is oversubPercent of capacity (100 = fits exactly,
// 125 = the paper's oversubscription point), applies the policy, and
// runs.
func RunWorkload(name string, scale float64, oversubPercent uint64, pol MigrationPolicy, base Config) *Result {
	return core.RunWorkload(name, scale, oversubPercent, pol, base)
}

// Multi-GPU extension (the paper's §VIII future work): collaborative
// execution across a cluster with per-GPU memory throttling.
type (
	// Cluster runs one workload bulk-synchronously across several GPUs.
	Cluster = multigpu.Cluster
	// ClusterResult aggregates a cluster run.
	ClusterResult = multigpu.Result
)

// NewCluster creates a cluster of nGPUs over the workload
// (cfg.DeviceMemBytes is per-GPU capacity). With cfg.ClusterWorkers > 1
// the cluster runs under the conservative parallel discrete-event
// coordinator (DESIGN.md §12), producing byte-identical results to the
// sequential default.
func NewCluster(w *Workload, cfg Config, nGPUs int) *Cluster {
	return multigpu.New(w, cfg, nGPUs)
}

// RunCluster builds and runs the named workload on nGPUs, sizing each
// GPU's memory so its share of the working set is oversubPercent of
// capacity. cfg.ClusterWorkers selects sequential or PDES execution as
// in NewCluster.
func RunCluster(name string, scale float64, nGPUs int, oversubPercent uint64, pol MigrationPolicy, base Config) *ClusterResult {
	return multigpu.RunWorkload(name, scale, nGPUs, oversubPercent, pol, base)
}

// Experiment harness re-exports: each FigN regenerates the corresponding
// figure of the paper's evaluation.
type (
	// ExperimentOptions configures an experiment sweep.
	ExperimentOptions = experiments.Options
	// TournamentOptions configures a pipeline tournament.
	TournamentOptions = experiments.TournamentOptions
	// TournamentResult is a ranked pipeline leaderboard.
	TournamentResult = experiments.TournamentResult
	// Table is a formatted experiment result.
	Table = report.Table
)

// Tournament runs every requested planner x prefetch-governor
// combination over the workload matrix under oversubscription and
// returns the deterministic leaderboard.
var Tournament = experiments.Tournament

// Figure and table regeneration entry points. MultiGPU runs the §VIII
// future-work extension study.
var (
	MultiGPU    = experiments.MultiGPU
	OracleHints = experiments.OracleHints
	Fig1        = experiments.Fig1
	Fig2        = experiments.Fig2
	Fig3        = experiments.Fig3
	Fig4        = experiments.Fig4
	Fig5        = experiments.Fig5
	Fig6        = experiments.Fig6
	Fig7        = experiments.Fig7
	Fig6And7    = experiments.Fig6And7
	// Fig6And7Cycles additionally reports the sweep's deterministic
	// simulated-cycle total (the bench-smoke drift metric).
	Fig6And7Cycles = experiments.Fig6And7Cycles
	Fig8           = experiments.Fig8
	Table1         = experiments.Table1
)
