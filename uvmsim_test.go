package uvmsim

import (
	"strings"
	"testing"
)

// The facade tests exercise the public API exactly as README's quick
// start and the examples do.

func TestPublicAPIQuickstart(t *testing.T) {
	b := BuildWorkload("ra", 0.1)
	if b.Name != "ra" || b.WorkingSet() == 0 {
		t.Fatalf("BuildWorkload: %+v", b)
	}
	cfg := DefaultConfig().WithPolicy(PolicyAdaptive).WithOversubscription(b.WorkingSet(), 125)
	res := Run(b, cfg)
	if res.Runtime() == 0 || res.Counters.WarpsRetired == 0 {
		t.Fatalf("run produced no work: %s", res.Counters.String())
	}
}

func TestPublicAPIRegistry(t *testing.T) {
	if len(Workloads()) != 8 {
		t.Fatalf("Workloads = %v", Workloads())
	}
	if len(RegularWorkloads()) != 4 || len(IrregularWorkloads()) != 4 {
		t.Fatal("classification split wrong")
	}
	for _, w := range RegularWorkloads() {
		if !IsRegular(w) {
			t.Errorf("%s misclassified", w)
		}
	}
	if len(Policies()) != 4 {
		t.Fatal("Policies wrong")
	}
}

func TestPublicAPIPolicyConstants(t *testing.T) {
	names := map[MigrationPolicy]string{
		PolicyDisabled: "Disabled",
		PolicyAlways:   "Always",
		PolicyOversub:  "Oversub",
		PolicyAdaptive: "Adaptive",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%v != %s", p, want)
		}
	}
}

func TestPublicAPITable1(t *testing.T) {
	out := Table1(DefaultConfig())
	if !strings.Contains(out, "Table I") {
		t.Fatalf("Table1 output:\n%s", out)
	}
}

func TestPublicAPICustomWorkload(t *testing.T) {
	// A minimal custom workload through the exported types, as
	// examples/custom-workload does.
	space := NewSpace()
	a := space.Alloc("data", 1<<20, false)
	prog := &countdownProgram{alloc: a, left: 64}
	w := &Workload{
		Name:    "custom",
		Space:   space,
		Kernels: []Kernel{{Name: "k", CTAs: 1, WarpsPerCTA: 1, NewWarp: func(_, _ int) WarpProgram { return prog }}},
		IterOf:  []int{1},
	}
	cfg := DefaultConfig().WithOversubscription(w.WorkingSet(), 100)
	res := Run(w, cfg)
	if res.Counters.MemInstructions != 64 {
		t.Fatalf("mem instructions = %d, want 64", res.Counters.MemInstructions)
	}
}

// countdownProgram touches the allocation sequentially, one 32-lane
// instruction per Next call.
type countdownProgram struct {
	alloc *Allocation
	left  int
	pos   uint64
}

// Next implements WarpProgram.
func (p *countdownProgram) Next(in *Instr) bool {
	if p.left == 0 {
		return false
	}
	p.left--
	in.Compute = 1
	in.Write = false
	in.NumAddrs = 32
	for i := 0; i < 32; i++ {
		in.Addrs[i] = p.alloc.Addr(p.pos)
		p.pos += 4
	}
	return true
}

func TestPublicAPIRunWorkloadHelper(t *testing.T) {
	res := RunWorkload("backprop", 0.1, 100, PolicyDisabled, DefaultConfig())
	if res.Workload != "backprop" {
		t.Fatalf("result workload %q", res.Workload)
	}
	if res.Counters.EvictedPages != 0 {
		t.Fatal("fitting run evicted pages")
	}
}

func TestPublicAPIPresets(t *testing.T) {
	p, err := PresetConfig("pascal")
	if err != nil || p != DefaultConfig() {
		t.Fatalf("pascal preset: %v", err)
	}
	v, err := PresetConfig("volta")
	if err != nil || v.NumSMs != 80 {
		t.Fatalf("volta preset: %+v, %v", v, err)
	}
	if _, err := PresetConfig("ampere"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

func TestPublicAPIExtras(t *testing.T) {
	if len(ExtraWorkloads()) != 2 || len(AllWorkloads()) != 10 {
		t.Fatalf("extras: %v / %v", ExtraWorkloads(), AllWorkloads())
	}
	b := BuildWorkload("spatter", 0.05)
	if b.Name != "spatter" {
		t.Fatalf("built %q", b.Name)
	}
}

func TestPublicAPICluster(t *testing.T) {
	res := RunCluster("hotspot", 0.05, 2, 100, PolicyDisabled, DefaultConfig())
	if res.Cycles == 0 || len(res.PerGPU) != 2 {
		t.Fatalf("cluster result: %+v", res)
	}
	if res.TotalThrashedPages() != 0 {
		t.Fatal("fitting cluster thrashed")
	}
	b := BuildWorkload("hotspot", 0.05)
	cfg := DefaultConfig().WithOversubscription(b.WorkingSet()/2, 100)
	c := NewCluster(b, cfg, 2)
	if c == nil {
		t.Fatal("NewCluster returned nil")
	}
}

func TestPublicAPIAdvise(t *testing.T) {
	b := BuildWorkload("ra", 0.05)
	cfg := DefaultConfig().WithOversubscription(b.WorkingSet(), 100)
	s := New(b, cfg)
	s.Driver.Advise(b.Space.Allocations()[0], AdvicePinHost)
	res := s.Run()
	if res.Counters.MigratedPages != 0 {
		t.Fatal("pinned run migrated pages")
	}
	if res.Counters.RemoteAccesses() == 0 {
		t.Fatal("pinned run produced no remote accesses")
	}
}

func TestPublicAPIExperimentSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke is slow")
	}
	tab := Fig5(ExperimentOptions{Scale: 0.1, Workloads: []string{"hotspot"}})
	if len(tab.Rows) != 1 || len(tab.Columns) != 3 {
		t.Fatalf("Fig5 table shape wrong: %+v", tab)
	}
}
