// Benchmarks regenerating every table and figure of the paper's
// evaluation (one testing.B benchmark per artifact), plus
// microbenchmarks of the simulator substrates.
//
// The figure benchmarks run their full sweep once per b.N iteration at a
// reduced workload scale (benchScale) so `go test -bench=.` completes in
// minutes; `cmd/paperbench -scale 1.0` runs the same sweeps at paper
// size. Each benchmark reports the figure's headline ratio as a custom
// metric so regressions in *shape*, not just speed, are visible.
package uvmsim

import (
	"runtime"
	"testing"

	"uvmsim/internal/alloc"
	"uvmsim/internal/config"
	"uvmsim/internal/gpu"
	"uvmsim/internal/prefetch"
	"uvmsim/internal/sim"
	"uvmsim/internal/stats"
	"uvmsim/internal/uvm"
)

// benchScale keeps figure sweeps tractable under `go test -bench`.
const benchScale = 0.25

func benchOpts() ExperimentOptions { return ExperimentOptions{Scale: benchScale} }

// BenchmarkTable1 regenerates Table I (configuration rendering).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(Table1(DefaultConfig())) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig1 regenerates Figure 1: oversubscription sensitivity of
// all eight workloads under the baseline. Reports the 125% slowdown of
// one regular and one irregular workload.
func BenchmarkFig1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := Fig1(benchOpts())
		reg, _ := t.Get("fdtd", 1)
		irr, _ := t.Get("ra", 1)
		b.ReportMetric(reg, "fdtd-125%-slowdown")
		b.ReportMetric(irr, "ra-125%-slowdown")
	}
}

// BenchmarkFig2 regenerates Figure 2: the per-allocation access
// frequency characterization of fdtd and sssp.
func BenchmarkFig2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, w := range []string{"fdtd", "sssp"} {
			if len(Fig2(w, benchOpts())) == 0 {
				b.Fatal("empty characterization")
			}
		}
	}
}

// BenchmarkFig3 regenerates Figure 3: access-pattern samples for fdtd
// iterations 2 and 4 and sssp iterations 3 and 5.
func BenchmarkFig3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f := Fig3("fdtd", benchOpts(), []int{2, 4}, 256)
		s := Fig3("sssp", benchOpts(), []int{3, 5}, 256)
		if len(f) != 2 || len(s) != 2 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: static-threshold sensitivity under
// the Always scheme at 125% oversubscription.
func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := Fig4(benchOpts())
		v, _ := t.Get("sssp", 2)
		b.ReportMetric(v, "sssp-ts32-vs-ts8")
	}
}

// BenchmarkFig5 regenerates Figure 5: the three schemes under no
// oversubscription. Reports Adaptive's ratio to baseline for sssp,
// which the paper expects near 1.0.
func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := Fig5(benchOpts())
		v, _ := t.Get("sssp", 2)
		b.ReportMetric(v, "sssp-adaptive-vs-baseline")
	}
}

// BenchmarkFig6And7 regenerates Figures 6 and 7 from one sweep: runtime
// and thrashing of all four schemes at 125% oversubscription. Reports
// the Adaptive runtime and thrash ratios for ra (the paper's strongest
// case).
func BenchmarkFig6And7(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt, th := Fig6And7(benchOpts())
		r, _ := rt.Get("ra", 3)
		t, _ := th.Get("ra", 3)
		b.ReportMetric(r, "ra-adaptive-runtime")
		b.ReportMetric(t, "ra-adaptive-thrash")
	}
}

// BenchmarkFig8 regenerates Figure 8: penalty sensitivity under
// Adaptive. Reports nw's ratio at the giant penalty (p=2^20), which the
// paper expects to collapse.
func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := Fig8(benchOpts())
		v, _ := t.Get("nw", 4)
		b.ReportMetric(v, "nw-p2^20-vs-baseline")
	}
}

// BenchmarkAblationEvictionGranularity compares 2MB against 64KB
// eviction granularity (Table I lists both) for an irregular workload
// under the baseline policy.
func BenchmarkAblationEvictionGranularity(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := BuildWorkload("nw", benchScale)
		coarse := DefaultConfig().WithOversubscription(w.WorkingSet(), 125)
		r2m := Run(w, coarse)
		fine := coarse
		fine.EvictionGranularity = 64 << 10
		r64k := Run(BuildWorkload("nw", benchScale), fine)
		b.ReportMetric(float64(r64k.Runtime())/float64(r2m.Runtime()), "nw-64k-vs-2m")
	}
}

// BenchmarkAblationPrefetcher compares the tree prefetcher against the
// none/sequential ablations on a regular workload at 125%
// oversubscription (the tree prefetcher is the paper's §II-B baseline
// infrastructure). Note a known fidelity limit (DESIGN.md §7): with
// unbounded fault batching and a single concurrent warp wave, demand
// faults are raised before any prefetch can preempt them, so the
// prefetchers differ mainly in batching and transfer granularity rather
// than fault count; expect ratios near 1 at small scales.
func BenchmarkAblationPrefetcher(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var times [3]uint64
		var batches [3]uint64
		for k, pf := range []PrefetcherKind{PrefetchTree, PrefetchNone, PrefetchSequential} {
			w := BuildWorkload("fdtd", benchScale)
			cfg := DefaultConfig().WithOversubscription(w.WorkingSet(), 125)
			cfg.Prefetcher = pf
			res := Run(w, cfg)
			times[k] = res.Runtime()
			batches[k] = res.Counters.FaultBatches
		}
		b.ReportMetric(float64(times[1])/float64(times[0]), "none-vs-tree")
		b.ReportMetric(float64(times[2])/float64(times[0]), "seq-vs-tree")
		b.ReportMetric(float64(batches[1])/float64(batches[0]), "none-vs-tree-batches")
	}
}

// BenchmarkCluster measures the §VIII multi-GPU extension: one 4-GPU ra
// cluster run per iteration, sequentially and under the
// conservative-PDES coordinator at GOMAXPROCS workers. The two modes
// are byte-identical by design, so the makespan is reported as a custom
// metric — behaviour drift shows up alongside speed. cmd/paperbench
// -bench-cluster-json records the same pair at scale 0.5 as
// BENCH_cluster.json, and -bench-cluster-compare gates on it.
func BenchmarkCluster(b *testing.B) {
	const gpus = 4
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"Sequential", 0},
		{"Parallel", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			w := BuildWorkload("ra", benchScale)
			cfg := DefaultConfig().WithPolicy(PolicyAdaptive).
				WithOversubscription(w.WorkingSet()/gpus, 125)
			cfg.ClusterWorkers = bc.workers
			b.ReportAllocs()
			b.ResetTimer()
			var makespan uint64
			for i := 0; i < b.N; i++ {
				makespan = NewCluster(w, cfg, gpus).Run().Cycles
			}
			b.ReportMetric(float64(makespan), "makespan-cycles")
		})
	}
}

// --- Substrate microbenchmarks ---

// BenchmarkEngineSchedule measures the enqueue half of the event queue
// in isolation: pure Schedule cost with periodic drains to bound heap
// size. Steady state must be allocation-free (see engine_alloc_test.go
// for the hard assertion).
func BenchmarkEngineSchedule(b *testing.B) {
	eng := sim.NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(uint64(i%512), fn)
		if eng.Pending() > 8192 {
			eng.Run()
		}
	}
	eng.Run()
}

// BenchmarkEngineRun measures the schedule+dispatch round trip: every
// iteration enqueues one event and the engine is periodically advanced,
// so the cost includes heap pops, same-cycle ring dispatch and slot
// recycling.
func BenchmarkEngineRun(b *testing.B) {
	eng := sim.NewEngine()
	var fired int
	fn := func() { fired++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(uint64(i%64), fn)
		if eng.Pending() > 1024 {
			eng.RunUntil(eng.Now() + 32)
		}
	}
	eng.Run()
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

// BenchmarkEngineEvents measures raw event-queue throughput.
func BenchmarkEngineEvents(b *testing.B) {
	eng := sim.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	var fired int
	for i := 0; i < b.N; i++ {
		eng.After(uint64(i%64), func() { fired++ })
		if eng.Pending() > 1024 {
			eng.RunUntil(eng.Now() + 32)
		}
	}
	eng.Run()
	if fired != b.N {
		b.Fatalf("fired %d of %d", fired, b.N)
	}
}

// BenchmarkDriverNearAccess measures the resident fast path, the
// dominant operation of every simulation.
func BenchmarkDriverNearAccess(b *testing.B) {
	eng := sim.NewEngine()
	space := alloc.NewSpace()
	a := space.Alloc("t", 2<<20, false)
	d := uvm.New(eng, config.Default(), space)
	// Fault the chunk in first.
	done := false
	d.Access(a.Base, false, func() { done = true })
	eng.Run()
	if !done {
		b.Fatal("warmup did not complete")
	}
	for blk := uint64(0); blk < 32; blk++ {
		d.Access(a.Base+blk*(64<<10), false, func() {})
	}
	eng.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := a.Base + uint64(i%16384)*128
		if _, ok := d.TryFastAccess(addr, i%4 == 0); !ok {
			b.Fatal("fast path missed")
		}
	}
}

// BenchmarkTreePrefetcher measures the OnMigrate heuristic.
func BenchmarkTreePrefetcher(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := prefetch.NewTree(32)
		for leaf := 0; leaf < 32 && !tr.Full(); leaf += 3 {
			tr.OnMigrate(leaf)
		}
	}
}

// BenchmarkCoalescer measures warp instruction coalescing through a
// minimal GPU run (32 divergent lanes per instruction).
func BenchmarkCoalescer(b *testing.B) {
	b.ReportAllocs()
	cfg := config.Default()
	cfg.NumSMs = 1
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		st := &stats.Counters{}
		g := gpu.New(eng, cfg, fastMem{eng}, st)
		g.RunSync(gpu.Kernel{
			Name: "coal", CTAs: 4, WarpsPerCTA: 8,
			NewWarp: func(cta, w int) gpu.WarpProgram {
				return &divergentProgram{count: 64, seed: uint64(cta*8 + w)}
			},
		})
	}
}

// fastMem serves everything synchronously at fixed latency.
type fastMem struct{ eng *sim.Engine }

func (m fastMem) TryFastAccess(addr uint64, write bool) (uint64, bool) {
	return m.eng.Now() + 100, true
}
func (m fastMem) Access(addr uint64, write bool, done func()) { m.eng.After(100, done) }

// divergentProgram emits fully divergent 32-lane instructions.
type divergentProgram struct {
	count int
	seed  uint64
	pos   int
}

// Next implements gpu.WarpProgram.
func (p *divergentProgram) Next(in *gpu.Instr) bool {
	if p.pos >= p.count {
		return false
	}
	p.pos++
	in.Compute = 2
	in.Write = p.pos%2 == 0
	in.NumAddrs = 32
	for l := 0; l < 32; l++ {
		p.seed = p.seed*6364136223846793005 + 1442695040888963407
		in.Addrs[l] = (p.seed >> 16) % (1 << 30)
	}
	return true
}
