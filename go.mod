module uvmsim

go 1.23
