#!/bin/sh
# Per-package coverage floor for the learned-policy surface.
#
# Runs `go test -coverprofile` for each listed package and fails when
# any falls below the floor. The floor guards the packages recent PRs
# made load-bearing — the mm pipeline registry/stages, the learn
# primitives, and the multi-tier surface (tier topology, per-GPU
# counters, CXL controller + co-location), the snapshot/fork engine,
# and the simlint framework
# plus its interprocedural analyzers — not the whole module: simulator
# hot paths are covered by the golden and determinism suites instead.
set -eu

FLOOR=70
PACKAGES="uvmsim/internal/mm uvmsim/internal/learn uvmsim/internal/tier uvmsim/internal/counters uvmsim/internal/cxl
uvmsim/internal/snapshot
uvmsim/internal/lint uvmsim/internal/lint/seedflow uvmsim/internal/lint/floatdet uvmsim/internal/lint/lockhold uvmsim/internal/lint/goroleak"

fail=0
for pkg in $PACKAGES; do
    profile=$(mktemp /tmp/cover.XXXXXX.out)
    go test -coverprofile="$profile" "$pkg" >/dev/null
    pct=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    rm -f "$profile"
    ok=$(awk -v p="$pct" -v f="$FLOOR" 'BEGIN {print (p >= f) ? 1 : 0}')
    if [ "$ok" = 1 ]; then
        echo "cover: $pkg ${pct}% (floor ${FLOOR}%)"
    else
        echo "cover: $pkg ${pct}% BELOW floor ${FLOOR}%" >&2
        fail=1
    fi
done
exit $fail
