GO ?= go

.PHONY: build test short vet lint lint-fix-check tools staticcheck govulncheck race bench bench-baseline bench-cluster-baseline bench-smoke bench-scale1 bench-scale1-smoke bench-cxl bench-cxl-smoke colo-smoke figures check ci smoke cover tournament tournament-smoke serve-smoke bench-serve

# Pinned tool versions for CI (and for local installs that want to match
# CI exactly). Bump deliberately; staticcheck versions are coupled to Go
# releases.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# The repo's own analyzer suite (cmd/simlint): determinism and
# correctness conventions machine-checked. Stdlib-only, so it always
# runs — no install step, no network.
lint:
	$(GO) run ./cmd/simlint ./...

# Convergence gate for the suggested-fix engine: on a clean tree,
# `simlint -fix` must rewrite nothing — a diff means a committed file
# carries an unapplied suggested fix (or an analyzer's fix does not
# converge). Any finding fails the first command; any rewrite fails the
# second.
lint-fix-check:
	$(GO) run ./cmd/simlint -fix ./...
	git diff --exit-code -- '*.go'

# Install the pinned external analyzers. CI runs this before
# staticcheck/govulncheck so the workflow and the Makefile cannot
# disagree about versions; run it locally to match CI exactly.
tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Static analysis beyond vet and simlint. staticcheck is not vendored;
# locally the target skips with a notice when the binary is absent, but
# in CI (CI env var set) a missing binary is a hard failure — the gate
# must not silently degrade.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif [ -n "$$CI" ]; then \
		echo "staticcheck required in CI but not installed (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))" >&2; \
		exit 1; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

# Known-vulnerability scan. Same contract as staticcheck: skip locally
# when absent, fail in CI.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	elif [ -n "$$CI" ]; then \
		echo "govulncheck required in CI but not installed (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))" >&2; \
		exit 1; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# Race-detect the whole module; internal/sweep and internal/multigpu
# hold the only real concurrency, but the sweeps drag every simulator
# package through the detector too.
race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the committed perf trajectory (see README, "Profiling and
# the performance baseline"). Run on an idle machine. The scale and
# workload subset must match bench-smoke below: the archived Fig6And7
# simulated-cycle total is its drift baseline.
bench-baseline:
	$(GO) run ./cmd/paperbench -bench-json BENCH_baseline.json -scale 0.1 -workloads bfs,sssp

# Regenerate the committed cluster perf trajectory: a 4-GPU ra cluster
# at scale 0.5, sequential vs conservative-PDES (see DESIGN.md §12),
# recording wall clock and the simulated-cycle makespan checksum.
bench-cluster-baseline:
	$(GO) run ./cmd/paperbench -bench-cluster-json BENCH_cluster.json -scale 0.5

# Behaviour-drift gate: rerun the Fig. 6/7 sweep (bfs+sssp subset at
# scale 0.1) and fail if the deterministic simulated-cycle total drifts
# more than ±2% from the committed baseline; then rerun the 4-GPU
# cluster in PDES mode against its own checksum (which the sequential
# run recorded — so this also re-proves sequential/PDES equivalence).
# Intentional behaviour changes regenerate the baselines with
# bench-baseline / bench-cluster-baseline.
bench-smoke:
	$(GO) run ./cmd/paperbench -bench-compare BENCH_baseline.json -scale 0.1 -workloads bfs,sssp
	$(GO) run ./cmd/paperbench -bench-cluster-compare BENCH_cluster.json

# Regenerate the committed scale-1.0 snapshot A/B trajectory: the full
# Fig. 6/7 matrix at paper size with snapshot forking off, then on. The
# generator hard-fails unless both modes produce identical simulated
# cycles (forking is byte-identical by construction). Run on an idle
# machine; the wall-clock pair is the headline perf record.
bench-scale1:
	$(GO) run ./cmd/paperbench -bench-scale1-json BENCH_scale1.json

# Gate on the committed snapshot A/B baseline: re-run both modes at the
# baseline's own scale (1.0 — one sweep each way, so this is the
# longest single smoke), fail on cycle drift >2%, on any off/on cycle
# divergence, or when the snapshot mode drops below the wall-time floor
# against the no-snapshot mode measured in the same process.
bench-scale1-smoke:
	$(GO) run ./cmd/paperbench -bench-scale1-compare BENCH_scale1.json

figures:
	$(GO) run ./cmd/paperbench -fig all

# Regenerate the committed pipeline-tournament leaderboard: every
# registered planner over the default workload matrix (bfs, ra, sssp)
# at 125% oversubscription. Deterministic — reruns produce an identical
# file, so a diff here is a behaviour change, not noise.
tournament:
	$(GO) run ./cmd/paperbench -tournament -scale 0.3 -tournament-out BENCH_tournament.json

# Fast tournament slice for CI: two planners (static vs learned) over
# two workloads at a small scale, proving the harness end to end
# without the full matrix cost.
tournament-smoke:
	$(GO) run ./cmd/paperbench -tournament -scale 0.05 -workloads bfs,ra \
		-tournament-planners threshold,reuse-dist -tournament-out -

# End-to-end smoke of the simd sweep service (cmd/simd, DESIGN.md §14):
# an in-process server, a small bfs job submitted twice, hard assertions
# that the resubmission is a pure cache hit with a byte-identical
# payload and that the progress stream, cache stats and metrics
# snapshot all agree with what ran.
serve-smoke:
	$(GO) run ./cmd/simd -smoke

# Regenerate the committed sweep-service load baseline: cold
# (simulating) vs warm (fully cached) phases over a mixed job set with
# 8 concurrent clients. Hard-fails unless warm throughput is >=10x cold
# and every warm payload is byte-identical to its cold counterpart.
bench-serve:
	$(GO) run ./cmd/paperbench -serve-load BENCH_serve.json -scale 0.05 -serve-clients 8

# Regenerate the committed co-location baseline: the canonical
# two-GPU, three-tenant mix over the pooled CXL tier under every pool
# policy. Deterministic — reruns produce an identical file — and the
# generator itself fails unless counter-arbitrated replication
# (cxl-repl) beats naive migrate-on-touch (cxl-migrate) on simulated
# cycles, the suite's headline claim.
bench-cxl:
	$(GO) run ./cmd/paperbench -bench-cxl-json BENCH_cxl.json

# Gate on the committed co-location baseline: re-run every scenario and
# fail on any divergence (the runs are deterministic, so the compare is
# exact — checksums and cycles, not a drift band).
bench-cxl-smoke:
	$(GO) run ./cmd/paperbench -bench-cxl-compare BENCH_cxl.json

# End-to-end smoke of the multi-tenant co-location mode (DESIGN.md §15):
# three tenants over two GPUs and a pooled CXL tier, run sequentially
# and under the PDES coordinator — the outputs (including the result
# checksum) must be byte-identical.
colo-smoke:
	$(GO) run ./cmd/uvmsim -tenants bfs:0:1,ra:0:0,backprop:1:1 -gpus 2 \
		-cxl-pool-mb 32 -colo-epochs 3 -seed 7 -workers 1 >/tmp/uvmsim-colo-seq.txt
	$(GO) run ./cmd/uvmsim -tenants bfs:0:1,ra:0:0,backprop:1:1 -gpus 2 \
		-cxl-pool-mb 32 -colo-epochs 3 -seed 7 -workers 2 >/tmp/uvmsim-colo-par.txt
	cmp /tmp/uvmsim-colo-seq.txt /tmp/uvmsim-colo-par.txt
	grep -q 'checksum=' /tmp/uvmsim-colo-seq.txt

# Per-package coverage floor (70%) for the learned-policy and
# multi-tier surfaces (the mm pipeline, the learn primitives, the tier
# topology, the per-GPU counter file, the CXL controller) and the
# simlint framework plus its interprocedural analyzers.
cover:
	./scripts/cover.sh

check: vet lint test

# End-to-end smoke: a small sweep with the full observability surface on
# (metrics registry + periodic invariant checker), validating that the
# emitted metrics document is well-formed versioned JSON.
smoke:
	$(GO) run ./cmd/paperbench -fig 1 -scale 0.05 -workloads ra \
		-metrics-json /tmp/uvmsim-smoke-metrics.json -check-invariants 20000
	grep -q '"version": 1' /tmp/uvmsim-smoke-metrics.json
	grep -q '"runs"' /tmp/uvmsim-smoke-metrics.json

# What CI runs (.github/workflows/ci.yml): vet + simlint + the fix
# convergence gate + staticcheck + govulncheck, build, race-detected
# tests, the coverage floor, the observability smoke, the tournament
# smoke, the sweep-service smoke, the co-location smoke + baseline
# gate, then the bench-smoke drift gate and the scale-1 snapshot A/B
# gate.
ci: vet lint lint-fix-check staticcheck govulncheck build race cover smoke tournament-smoke serve-smoke colo-smoke bench-cxl-smoke bench-smoke bench-scale1-smoke
