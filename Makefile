GO ?= go

.PHONY: build test short vet race bench bench-baseline figures check ci smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# Race-detect the whole module; internal/sweep and internal/multigpu
# hold the only real concurrency, but the sweeps drag every simulator
# package through the detector too.
race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the committed perf trajectory (see README, "Profiling and
# the performance baseline"). Run on an idle machine.
bench-baseline:
	$(GO) run ./cmd/paperbench -bench-json BENCH_baseline.json -scale 0.25

figures:
	$(GO) run ./cmd/paperbench -fig all

check: vet test

# End-to-end smoke: a small sweep with the full observability surface on
# (metrics registry + periodic invariant checker), validating that the
# emitted metrics document is well-formed versioned JSON.
smoke:
	$(GO) run ./cmd/paperbench -fig 1 -scale 0.05 -workloads ra \
		-metrics-json /tmp/uvmsim-smoke-metrics.json -check-invariants 20000
	grep -q '"version": 1' /tmp/uvmsim-smoke-metrics.json
	grep -q '"runs"' /tmp/uvmsim-smoke-metrics.json

# What CI runs (.github/workflows/ci.yml): vet, build, race-detected
# tests, then the observability smoke.
ci: vet build race smoke
