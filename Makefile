GO ?= go

.PHONY: build test short vet staticcheck race bench bench-baseline bench-smoke figures check ci smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. staticcheck is not vendored; the target
# skips with a notice when the binary is absent (CI installs it).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

# Race-detect the whole module; internal/sweep and internal/multigpu
# hold the only real concurrency, but the sweeps drag every simulator
# package through the detector too.
race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the committed perf trajectory (see README, "Profiling and
# the performance baseline"). Run on an idle machine. The scale and
# workload subset must match bench-smoke below: the archived Fig6And7
# simulated-cycle total is its drift baseline.
bench-baseline:
	$(GO) run ./cmd/paperbench -bench-json BENCH_baseline.json -scale 0.1 -workloads bfs,sssp

# Behaviour-drift gate: rerun the Fig. 6/7 sweep (bfs+sssp subset at
# scale 0.1) and fail if the deterministic simulated-cycle total drifts
# more than ±2% from the committed baseline. Intentional behaviour
# changes regenerate the baseline with bench-baseline.
bench-smoke:
	$(GO) run ./cmd/paperbench -bench-compare BENCH_baseline.json -scale 0.1 -workloads bfs,sssp

figures:
	$(GO) run ./cmd/paperbench -fig all

check: vet test

# End-to-end smoke: a small sweep with the full observability surface on
# (metrics registry + periodic invariant checker), validating that the
# emitted metrics document is well-formed versioned JSON.
smoke:
	$(GO) run ./cmd/paperbench -fig 1 -scale 0.05 -workloads ra \
		-metrics-json /tmp/uvmsim-smoke-metrics.json -check-invariants 20000
	grep -q '"version": 1' /tmp/uvmsim-smoke-metrics.json
	grep -q '"runs"' /tmp/uvmsim-smoke-metrics.json

# What CI runs (.github/workflows/ci.yml): vet + staticcheck, build,
# race-detected tests, the observability smoke, then the bench-smoke
# drift gate.
ci: vet staticcheck build race smoke bench-smoke
