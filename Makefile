GO ?= go

.PHONY: build test short vet race bench bench-baseline figures check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# Race-detect the whole module; internal/sweep and internal/multigpu
# hold the only real concurrency, but the sweeps drag every simulator
# package through the detector too.
race: vet
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the committed perf trajectory (see README, "Profiling and
# the performance baseline"). Run on an idle machine.
bench-baseline:
	$(GO) run ./cmd/paperbench -bench-json BENCH_baseline.json -scale 0.25

figures:
	$(GO) run ./cmd/paperbench -fig all

check: vet test
