package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uvmsim/internal/resultio"
)

func TestBenchCXLSuiteAndCompare(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_cxl.json")
	code, stdout, stderr := runCLI(t, "-bench-cxl-json", path)
	if code != 0 {
		t.Fatalf("bench-cxl-json = %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "bench-cxl: cxl-repl") {
		t.Fatalf("stdout missing headline: %q", stdout)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	suite, err := resultio.ReadCXLSuite(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite.Scenarios) != 3 {
		t.Fatalf("suite has %d scenarios, want one per pool policy", len(suite.Scenarios))
	}
	repl, naive := suite.Scenario("cxl-repl"), suite.Scenario("cxl-migrate")
	if repl == nil || naive == nil || repl.Result.SimCycles >= naive.Result.SimCycles {
		t.Fatalf("headline claim not recorded: repl=%+v naive=%+v", repl, naive)
	}
	if code, stdout, stderr := runCLI(t, "-bench-cxl-compare", path); code != 0 || !strings.Contains(stdout, "PASS") {
		t.Fatalf("bench-cxl-compare = %d, stdout %q, stderr %q", code, stdout, stderr)
	}
}

func TestBenchCXLCompareDetectsDivergence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_cxl.json")
	if code, _, stderr := runCLI(t, "-bench-cxl-json", path); code != 0 {
		t.Fatalf("bench-cxl-json = %d, stderr %q", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one scenario's checksum; the exact-compare gate must trip.
	s := strings.Replace(string(raw), `"checksum": `, `"checksum": 1`, 1)
	if s == string(raw) {
		t.Fatal("no checksum field found to corrupt")
	}
	if err := os.WriteFile(path, []byte(s), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runCLI(t, "-bench-cxl-compare", path)
	if code != 2 || !strings.Contains(stderr, "diverged") {
		t.Fatalf("corrupted compare = %d, stderr %q, want exit 2 with divergence error", code, stderr)
	}
}

func TestBenchCXLCompareMissingFileExits2(t *testing.T) {
	code, _, stderr := runCLI(t, "-bench-cxl-compare", filepath.Join(t.TempDir(), "nope.json"))
	if code != 2 || stderr == "" {
		t.Fatalf("missing baseline = %d, stderr %q", code, stderr)
	}
}
