package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/mm"
	"uvmsim/internal/obs"
)

// runCLI invokes the tool body exactly as main does, capturing both
// streams. It fails the test if the invocation panics — every CLI error
// must surface as a one-line message and a non-zero exit code.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("run(%q) panicked: %v", args, r)
		}
	}()
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestInvalidInvocationsExitNonZero(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"noMode", nil, "Usage"},
		{"unknownFigure", []string{"-fig", "99"}, "unknown figure"},
		{"zeroScale", []string{"-fig", "1", "-scale", "0"}, "-scale must be positive"},
		{"negativeWorkers", []string{"-fig", "1", "-workers", "-1"}, "-workers must be non-negative"},
		{"negativeClusterWorkers", []string{"-fig", "1", "-cluster-workers", "-2"}, "-cluster-workers must be non-negative"},
		{"undefinedFlag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("run(%q) = 0, want non-zero", tc.args)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr = %q, want substring %q", stderr, tc.wantErr)
			}
		})
	}
}

// Unwritable observability outputs must fail before any sweep runs.
func TestUnwritableOutputPathsExitNonZero(t *testing.T) {
	for _, flagName := range []string{"-metrics-json", "-trace-out"} {
		t.Run(flagName, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "missing-dir", "out.json")
			code, _, stderr := runCLI(t, "-fig", "1", flagName, bad)
			if code == 0 {
				t.Fatalf("%s %s exited 0, want non-zero", flagName, bad)
			}
			if !strings.Contains(stderr, "missing-dir") {
				t.Fatalf("stderr = %q, want the failing path", stderr)
			}
		})
	}
}

func TestTable1PrintsConfiguration(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-table1")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "GPU") {
		t.Fatalf("Table I output:\n%s", stdout)
	}
}

// A sweep with the full observability surface on: every cell's metrics
// land in one versioned document, the invariant checker runs throughout,
// and the baseline stdout tables are unchanged.
func TestSweepWithMetricsAndInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep smoke test")
	}
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	code, stdout, stderr := runCLI(t,
		"-fig", "1", "-scale", "0.05", "-workloads", "ra",
		"-metrics-json", metrics, "-check-invariants", "20000")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "ra") {
		t.Fatalf("figure output:\n%s", stdout)
	}
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.SuiteSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig. 1 runs one cell per oversubscription point.
	if len(snap.Runs) < 2 {
		t.Fatalf("runs = %d, want one per sweep cell", len(snap.Runs))
	}
	for _, r := range snap.Runs {
		if !strings.HasPrefix(r.Name, "ra/") {
			t.Fatalf("unexpected run name %q", r.Name)
		}
	}
}

// Unknown pipeline-override names must exit 2 before any sweep runs.
func TestUnknownPipelineOverridesExitNonZero(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"planner", []string{"-table1", "-planner", "bogus"}, "unknown planner"},
		{"replacement", []string{"-table1", "-replacement", "mru"}, "unknown replacement"},
		{"prefetcher", []string{"-table1", "-prefetcher", "oracle"}, "unknown prefetcher"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("run(%q) = %d, want 2", tc.args, code)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr = %q, want substring %q", stderr, tc.wantErr)
			}
		})
	}
}

// Every advertised name is accepted by the flag surface: enum String()
// values and registered planner names parse cleanly (using -table1 so
// the invocation stays instant).
func TestAdvertisedOverrideNamesParse(t *testing.T) {
	runOK := func(t *testing.T, args ...string) {
		t.Helper()
		args = append([]string{"-table1"}, args...)
		if code, _, stderr := runCLI(t, args...); code != 0 {
			t.Fatalf("run(%q) = %d, stderr %q", args, code, stderr)
		}
	}
	for _, n := range mm.PlannerNames() {
		t.Run("planner/"+n, func(t *testing.T) { runOK(t, "-planner", n) })
	}
	for _, rp := range []config.ReplacementPolicy{config.ReplaceLRU, config.ReplaceLFU} {
		t.Run("replacement/"+rp.String(), func(t *testing.T) { runOK(t, "-replacement", rp.String()) })
	}
	for _, pf := range []config.PrefetcherKind{config.PrefetchTree, config.PrefetchNone, config.PrefetchSequential} {
		t.Run("prefetcher/"+pf.String(), func(t *testing.T) { runOK(t, "-prefetcher", pf.String()) })
	}
}

// A pipeline override must actually reach the sweep: disabling the
// prefetch governor changes the cells of a small Fig. 6 run.
func TestPipelineOverrideReachesSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	base := []string{"-fig", "6", "-csv", "-scale", "0.02", "-workloads", "ra"}
	_, defOut, _ := runCLI(t, base...)
	_, soloOut, _ := runCLI(t, append(append([]string{}, base...), "-prefetcher", "none")...)
	if defOut == "" || soloOut == "" {
		t.Fatal("empty sweep output")
	}
	if defOut == soloOut {
		t.Fatal("-prefetcher none produced byte-identical Fig. 6 output; override did not reach the sweep")
	}
}

// The bench-compare gate passes against a baseline it just generated
// and rejects baselines measured at another scale.
func TestBenchCompareAgainstFreshBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	args := []string{"-bench-json", path, "-scale", "0.02", "-workloads", "ra"}
	if code, _, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("bench-json failed: %d %q", code, stderr)
	}
	cmp := []string{"-bench-compare", path, "-scale", "0.02", "-workloads", "ra"}
	if code, stdout, stderr := runCLI(t, cmp...); code != 0 || !strings.Contains(stdout, "PASS") {
		t.Fatalf("bench-compare = %d, stdout %q, stderr %q", code, stdout, stderr)
	}
	wrongScale := []string{"-bench-compare", path, "-scale", "0.05", "-workloads", "ra"}
	if code, _, stderr := runCLI(t, wrongScale...); code == 0 || !strings.Contains(stderr, "scale") {
		t.Fatalf("scale mismatch not rejected: %d %q", code, stderr)
	}
}

// The scale-1 snapshot A/B gate passes against a baseline it just
// generated (at the baseline's own scale), rejects baselines without
// the snapshot-on checksum, and records identical simulated cycles for
// both modes.
func TestBenchScale1CompareAgainstFreshBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	path := filepath.Join(t.TempDir(), "bench-scale1.json")
	args := []string{"-bench-scale1-json", path, "-scale", "0.02", "-workloads", "ra"}
	if code, stdout, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("bench-scale1-json failed: %d %q %q", code, stdout, stderr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Fig6And7SnapshotOff", "Fig6And7SnapshotOn"} {
		if !strings.Contains(string(data), name) {
			t.Fatalf("suite %s missing result %q:\n%s", path, name, data)
		}
	}
	if code, stdout, stderr := runCLI(t, "-bench-scale1-compare", path); code != 0 || !strings.Contains(stdout, "PASS") {
		t.Fatalf("bench-scale1-compare = %d, stdout %q, stderr %q", code, stdout, stderr)
	}
	// A plain fig-sweep baseline carries no snapshot A/B checksum and
	// must be rejected with a pointer at -bench-scale1-json.
	figPath := filepath.Join(t.TempDir(), "bench.json")
	if code, _, stderr := runCLI(t, "-bench-json", figPath, "-scale", "0.02", "-workloads", "ra"); code != 0 {
		t.Fatalf("bench-json failed: %d %q", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-bench-scale1-compare", figPath); code == 0 || !strings.Contains(stderr, "bench-scale1-json") {
		t.Fatalf("checksum-free baseline not rejected: %d %q", code, stderr)
	}
}

// The cluster drift gate passes against a baseline it just generated
// (at the baseline's own scale — no -scale agreement needed) and
// rejects baselines without a cluster checksum.
func TestBenchClusterCompareAgainstFreshBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	path := filepath.Join(t.TempDir(), "bench-cluster.json")
	if code, stdout, stderr := runCLI(t, "-bench-cluster-json", path, "-scale", "0.05"); code != 0 {
		t.Fatalf("bench-cluster-json failed: %d %q %q", code, stdout, stderr)
	}
	if code, stdout, stderr := runCLI(t, "-bench-cluster-compare", path); code != 0 || !strings.Contains(stdout, "PASS") {
		t.Fatalf("bench-cluster-compare = %d, stdout %q, stderr %q", code, stdout, stderr)
	}
	// A single-GPU baseline carries no cluster checksum and must be
	// rejected with a pointer at -bench-cluster-json.
	figPath := filepath.Join(t.TempDir(), "bench.json")
	if code, _, stderr := runCLI(t, "-bench-json", figPath, "-scale", "0.02", "-workloads", "ra"); code != 0 {
		t.Fatalf("bench-json failed: %d %q", code, stderr)
	}
	if code, _, stderr := runCLI(t, "-bench-cluster-compare", figPath); code == 0 || !strings.Contains(stderr, "bench-cluster-json") {
		t.Fatalf("checksum-free baseline not rejected: %d %q", code, stderr)
	}
}

// -workers must bound sweep parallelism without changing results:
// simulated sweeps are deterministic, so a single-worker run and the
// default (one worker per core) must emit byte-identical CSV.
func TestWorkersFlagPreservesSweepOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	base := []string{"-fig", "6", "-csv", "-scale", "0.02", "-workloads", "ra"}
	_, defOut, _ := runCLI(t, base...)
	_, oneOut, _ := runCLI(t, append(append([]string{}, base...), "-workers", "1")...)
	if defOut == "" || defOut != oneOut {
		t.Fatalf("-workers 1 changed sweep output:\ndefault:\n%s\nworkers=1:\n%s", defOut, oneOut)
	}
}
