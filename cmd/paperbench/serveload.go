package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"uvmsim"
	"uvmsim/internal/experiments"
	"uvmsim/internal/resultio"
	"uvmsim/internal/serve"
)

// serveWarmSpeedup is the acceptance floor for the serve load test: the
// warm (fully cached) phase must push cells at least this many times
// faster than the cold (simulating) phase. Cache hits skip simulation
// entirely, so in practice the ratio is orders of magnitude higher; a
// value near 1 means the cache is not being hit at all.
const serveWarmSpeedup = 10

// serveLoadJobs is the mixed job set the load test drives: three
// figure sweeps of different shapes plus a small pipeline tournament,
// every one expressed through the same job mappings the CLIs use.
func serveLoadJobs(opt uvmsim.ExperimentOptions) ([]serve.JobRequest, error) {
	eo := opt
	if len(eo.Workloads) == 0 {
		eo.Workloads = []string{"bfs", "ra"}
	}
	var jobs []serve.JobRequest
	for _, fig := range []string{"fig1", "fig5", "fig6"} {
		req, err := experiments.FigureJob(fig, eo)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, req)
	}
	jobs = append(jobs, experiments.TournamentJob(experiments.TournamentOptions{
		Options:  eo,
		Planners: []string{"threshold", "thrash-guard"},
	}))
	return jobs, nil
}

// servePhase drives every (client, job) pair concurrently against the
// server and returns the wall-clock elapsed time, the total cells
// completed, the summed per-job latency, and the payload of each job as
// seen by the first client (payload[j]).
func servePhase(c *serve.Client, jobs []serve.JobRequest, clients int) (elapsed, jobLatency time.Duration, cells int, payloads [][]byte, err error) {
	payloads = make([][]byte, len(jobs))
	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
	)
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		for j := range jobs {
			wg.Add(1)
			go func(cl, j int) {
				defer wg.Done()
				t0 := time.Now()
				st, payload, rerr := c.RunJob(jobs[j], nil)
				lat := time.Since(t0)
				mu.Lock()
				defer mu.Unlock()
				if rerr != nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d job %d: %w", cl, j, rerr)
					}
					return
				}
				jobLatency += lat
				cells += st.TotalCells
				if cl == 0 {
					payloads[j] = payload
				}
			}(cl, j)
		}
	}
	wg.Wait()
	return time.Since(start), jobLatency, cells, payloads, firstErr
}

// runServeLoad measures the sweep service under load: an in-process
// simd server, a cold phase that simulates the mixed job set from an
// empty cache, and a warm phase where `clients` concurrent clients
// resubmit every job. It hard-fails unless every warm payload is
// byte-identical to its cold counterpart and warm cell throughput is at
// least serveWarmSpeedup times the cold throughput, then archives the
// numbers as a versioned BenchSuite (the BENCH_serve.json baseline).
func runServeLoad(path string, opt uvmsim.ExperimentOptions, clients int, stdout, stderr io.Writer) error {
	if clients <= 0 {
		clients = 8
	}
	jobs, err := serveLoadJobs(opt)
	if err != nil {
		return err
	}
	s := serve.NewServer(serve.Options{Workers: opt.Workers})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	//simlint:allow goroleak -- Serve returns once the deferred srv.Close below tears the listener down
	go srv.Serve(ln) //nolint:errcheck // shut down via Close below
	defer srv.Close()
	c := &serve.Client{BaseURL: "http://" + ln.Addr().String()}

	fmt.Fprintf(stderr, "serve-load: cold phase, %d jobs on %s...\n", len(jobs), c.BaseURL)
	coldElapsed, coldLat, coldCells, coldPayloads, err := servePhase(c, jobs, 1)
	if err != nil {
		return fmt.Errorf("cold phase: %w", err)
	}

	// The deterministic work metric: simulated cycles summed over the
	// distinct cells of the job set — identical on every machine.
	var simCycles uint64
	for _, p := range coldPayloads {
		doc, derr := serve.DecodeResult(p)
		if derr != nil {
			return fmt.Errorf("cold payload: %w", derr)
		}
		for _, cell := range doc.Cells {
			simCycles += cell.Record.Counters.Cycles
		}
	}

	coldStats, err := c.CacheStats()
	if err != nil {
		return err
	}

	fmt.Fprintf(stderr, "serve-load: warm phase, %d clients x %d jobs...\n", clients, len(jobs))
	warmElapsed, warmLat, warmCells, warmPayloads, err := servePhase(c, jobs, clients)
	if err != nil {
		return fmt.Errorf("warm phase: %w", err)
	}
	for j := range jobs {
		if !bytes.Equal(coldPayloads[j], warmPayloads[j]) {
			return fmt.Errorf("job %d: warm payload differs from cold payload", j)
		}
	}
	cs, err := c.CacheStats()
	if err != nil {
		return err
	}
	// Jobs in the set overlap (fig1's fitting baseline is also fig5's),
	// so the cold phase records fewer misses than submitted cells; what
	// the warm phase must prove is that it added none.
	if cs.Misses != coldStats.Misses || cs.Entries != coldStats.Entries {
		return fmt.Errorf("warm phase was not fully cached: misses %d -> %d, entries %d -> %d",
			coldStats.Misses, cs.Misses, coldStats.Entries, cs.Entries)
	}

	coldRate := float64(coldCells) / coldElapsed.Seconds()
	warmRate := float64(warmCells) / warmElapsed.Seconds()
	speedup := warmRate / coldRate
	fmt.Fprintf(stdout, "serve-load: cold %d cells in %v (%.1f cells/s), warm %d cells in %v (%.0f cells/s), speedup %.0fx\n",
		coldCells, coldElapsed.Round(time.Millisecond), coldRate,
		warmCells, warmElapsed.Round(time.Millisecond), warmRate, speedup)
	if speedup < serveWarmSpeedup {
		return fmt.Errorf("warm throughput only %.1fx cold (floor %dx): the cache is not doing its job", speedup, serveWarmSpeedup)
	}

	suite := &resultio.BenchSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      opt.Scale,
		Workloads:  opt.Workloads,
		Results: []resultio.BenchResult{
			{
				Name:       "ServeColdCells",
				Iterations: coldCells,
				NsPerOp:    float64(coldElapsed.Nanoseconds()) / float64(coldCells),
				SimCycles:  simCycles,
			},
			{
				Name:       "ServeWarmCells",
				Iterations: warmCells,
				NsPerOp:    float64(warmElapsed.Nanoseconds()) / float64(warmCells),
				SimCycles:  simCycles,
			},
			{
				Name:       "ServeColdJobs",
				Iterations: len(jobs),
				NsPerOp:    float64(coldLat.Nanoseconds()) / float64(len(jobs)),
			},
			{
				Name:       "ServeWarmJobs",
				Iterations: clients * len(jobs),
				NsPerOp:    float64(warmLat.Nanoseconds()) / float64(clients*len(jobs)),
			},
		},
	}
	out := stdout
	if path != "-" {
		f, cerr := os.Create(path)
		if cerr != nil {
			return cerr
		}
		defer f.Close()
		out = f
	}
	//simlint:allow seedflow -- NsPerOp is a wall-clock measurement by design; bench baselines gate on drift, the deterministic fields are SimCycles/Iterations
	if err := resultio.WriteBenchSuite(out, suite); err != nil {
		return err
	}
	// Re-read what we wrote: the archived baseline must round-trip
	// through the versioned schema it claims to carry.
	if path != "-" {
		f, oerr := os.Open(path)
		if oerr != nil {
			return oerr
		}
		defer f.Close()
		if _, err := resultio.ReadBenchSuite(f); err != nil {
			return fmt.Errorf("%s failed schema validation after write: %w", path, err)
		}
		fmt.Fprintf(stderr, "wrote %s\n", path)
	}
	return nil
}
