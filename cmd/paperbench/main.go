// Command paperbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	paperbench -fig all            # every figure at the default scale
//	paperbench -fig 6 -scale 0.5   # one figure, reduced scale
//	paperbench -table1             # the simulated-system configuration
//	paperbench -fig 6 -csv         # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uvmsim"
	"uvmsim/internal/cliutil"
	"uvmsim/internal/plot"
)

func main() {
	var (
		fig       = flag.String("fig", "", "figure to regenerate: 1-8, or 'all'")
		table1    = flag.Bool("table1", false, "print Table I (simulated system configuration)")
		scale     = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper size)")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plotOut   = flag.Bool("plot", false, "render tables as terminal bar charts")
		workloads = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		sample    = flag.Uint64("sample", 256, "Fig. 3 sampling density (1 = every access)")
	)
	flag.Parse()

	if !*table1 && *fig == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *table1 {
		fmt.Print(uvmsim.Table1(uvmsim.DefaultConfig()))
		fmt.Println()
	}
	if *fig == "" {
		return
	}

	opt := uvmsim.ExperimentOptions{Scale: *scale}
	if *workloads != "" {
		opt.Workloads = cliutil.SplitList(*workloads)
	}
	emit := func(t *uvmsim.Table) {
		switch {
		case *csv:
			fmt.Print(t.CSV())
		case *plotOut:
			rows := make([]plot.NamedRow, len(t.Rows))
			for i, r := range t.Rows {
				rows[i] = plot.NamedRow{Label: r.Label, Values: r.Values}
			}
			fmt.Print(plot.GroupedBars(t.Title+"\n"+t.Metric, t.Columns, rows, 50))
		default:
			fmt.Print(t.Format())
		}
		fmt.Println()
	}

	figs := strings.Split(*fig, ",")
	if *fig == "all" {
		figs = []string{"1", "2", "3", "4", "5", "6", "7", "8"}
	}
	for _, f := range figs {
		switch f {
		case "1":
			emit(uvmsim.Fig1(opt))
		case "2":
			for _, w := range []string{"fdtd", "sssp"} {
				fmt.Println(uvmsim.Fig2(w, opt))
			}
		case "3":
			series := uvmsim.Fig3("fdtd", opt, []int{2, 4}, *sample)
			for _, it := range []int{2, 4} {
				fmt.Printf("Figure 3 (fdtd, iteration %d):\n%s\n", it, series[it])
			}
			series = uvmsim.Fig3("sssp", opt, []int{3, 5}, *sample)
			for _, it := range []int{3, 5} {
				fmt.Printf("Figure 3 (sssp, iteration %d):\n%s\n", it, series[it])
			}
		case "4":
			emit(uvmsim.Fig4(opt))
		case "5":
			emit(uvmsim.Fig5(opt))
		case "6":
			emit(uvmsim.Fig6(opt))
		case "7":
			emit(uvmsim.Fig7(opt))
		case "6+7", "67":
			rt, th := uvmsim.Fig6And7(opt)
			emit(rt)
			emit(th)
		case "8":
			emit(uvmsim.Fig8(opt))
		case "multigpu":
			// The paper's §VIII future-work extension.
			emit(uvmsim.MultiGPU("ra", opt, 125))
			emit(uvmsim.MultiGPU("sssp", opt, 125))
		case "hints":
			// Extension: profiled cudaMemAdvise-style hints vs Adaptive.
			hintOpt := opt
			if len(hintOpt.Workloads) == 0 {
				hintOpt.Workloads = uvmsim.IrregularWorkloads()
			}
			emit(uvmsim.OracleHints(hintOpt, 125))
		default:
			fmt.Fprintf(os.Stderr, "paperbench: unknown figure %q\n", f)
			os.Exit(2)
		}
	}
}
