// Command paperbench regenerates the tables and figures of the paper's
// evaluation section, and records the simulator's own performance.
//
// Usage:
//
//	paperbench -fig all            # every figure at the default scale
//	paperbench -fig 6 -scale 0.5   # one figure, reduced scale
//	paperbench -table1             # the simulated-system configuration
//	paperbench -fig 6 -csv         # machine-readable output
//
// Performance tooling:
//
//	paperbench -fig 6 -cpuprofile cpu.pprof   # profile a sweep
//	paperbench -fig 6 -memprofile mem.pprof   # heap profile at exit
//	paperbench -bench-json BENCH_baseline.json -scale 0.25
//	                                # measure the perf-trajectory suite
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"uvmsim"
	"uvmsim/internal/cliutil"
	"uvmsim/internal/plot"
	"uvmsim/internal/resultio"
	"uvmsim/internal/sim"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 1-8, or 'all'")
		table1     = flag.Bool("table1", false, "print Table I (simulated system configuration)")
		scale      = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper size)")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		plotOut    = flag.Bool("plot", false, "render tables as terminal bar charts")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: all)")
		sample     = flag.Uint64("sample", 256, "Fig. 3 sampling density (1 = every access)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		benchJSON  = flag.String("bench-json", "", "run the benchmark suite and write a versioned JSON report to this file ('-' for stdout)")
	)
	flag.Parse()

	if !*table1 && *fig == "" && *benchJSON == "" {
		flag.Usage()
		os.Exit(2)
	}
	opt := uvmsim.ExperimentOptions{Scale: *scale}
	if *workloads != "" {
		opt.Workloads = cliutil.SplitList(*workloads)
	}
	err := run(*fig, *table1, *csv, *plotOut, *sample, *cpuprofile, *memprofile, *benchJSON, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
		os.Exit(2)
	}
}

// run executes the selected modes with profiling hooks wrapped around
// them; it returns instead of exiting so deferred profile writers run.
func run(fig string, table1, csv, plotOut bool, sample uint64, cpuprofile, memprofile, benchJSON string, opt uvmsim.ExperimentOptions) error {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if memprofile != "" {
		defer func() {
			f, err := os.Create(memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: %v\n", err)
			}
		}()
	}

	if benchJSON != "" {
		if err := runBenchSuite(benchJSON, opt); err != nil {
			return err
		}
	}
	if table1 {
		fmt.Print(uvmsim.Table1(uvmsim.DefaultConfig()))
		fmt.Println()
	}
	if fig == "" {
		return nil
	}
	return runFigures(fig, csv, plotOut, sample, opt)
}

func runFigures(fig string, csv, plotOut bool, sample uint64, opt uvmsim.ExperimentOptions) error {
	emit := func(t *uvmsim.Table) {
		switch {
		case csv:
			fmt.Print(t.CSV())
		case plotOut:
			rows := make([]plot.NamedRow, len(t.Rows))
			for i, r := range t.Rows {
				rows[i] = plot.NamedRow{Label: r.Label, Values: r.Values}
			}
			fmt.Print(plot.GroupedBars(t.Title+"\n"+t.Metric, t.Columns, rows, 50))
		default:
			fmt.Print(t.Format())
		}
		fmt.Println()
	}

	figs := strings.Split(fig, ",")
	if fig == "all" {
		figs = []string{"1", "2", "3", "4", "5", "6", "7", "8"}
	}
	for _, f := range figs {
		switch f {
		case "1":
			emit(uvmsim.Fig1(opt))
		case "2":
			for _, w := range []string{"fdtd", "sssp"} {
				fmt.Println(uvmsim.Fig2(w, opt))
			}
		case "3":
			series := uvmsim.Fig3("fdtd", opt, []int{2, 4}, sample)
			for _, it := range []int{2, 4} {
				fmt.Printf("Figure 3 (fdtd, iteration %d):\n%s\n", it, series[it])
			}
			series = uvmsim.Fig3("sssp", opt, []int{3, 5}, sample)
			for _, it := range []int{3, 5} {
				fmt.Printf("Figure 3 (sssp, iteration %d):\n%s\n", it, series[it])
			}
		case "4":
			emit(uvmsim.Fig4(opt))
		case "5":
			emit(uvmsim.Fig5(opt))
		case "6":
			emit(uvmsim.Fig6(opt))
		case "7":
			emit(uvmsim.Fig7(opt))
		case "6+7", "67":
			rt, th := uvmsim.Fig6And7(opt)
			emit(rt)
			emit(th)
		case "8":
			emit(uvmsim.Fig8(opt))
		case "multigpu":
			// The paper's §VIII future-work extension.
			emit(uvmsim.MultiGPU("ra", opt, 125))
			emit(uvmsim.MultiGPU("sssp", opt, 125))
		case "hints":
			// Extension: profiled cudaMemAdvise-style hints vs Adaptive.
			hintOpt := opt
			if len(hintOpt.Workloads) == 0 {
				hintOpt.Workloads = uvmsim.IrregularWorkloads()
			}
			emit(uvmsim.OracleHints(hintOpt, 125))
		default:
			return fmt.Errorf("unknown figure %q", f)
		}
	}
	return nil
}

// runBenchSuite measures the perf-trajectory suite — the Fig. 1 and
// Fig. 6/7 sweeps plus the event-engine microbenchmarks that guard the
// hot path — and writes a versioned resultio.BenchSuite.
func runBenchSuite(path string, opt uvmsim.ExperimentOptions) error {
	benchmarks := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"Fig1", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if uvmsim.Fig1(opt) == nil {
					b.Fatal("empty figure")
				}
			}
		}},
		{"Fig6And7", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt, th := uvmsim.Fig6And7(opt)
				if rt == nil || th == nil {
					b.Fatal("empty figure")
				}
			}
		}},
		{"EngineSchedule", func(b *testing.B) {
			eng := sim.NewEngine()
			fn := func() {}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.After(sim.Cycle(i%512), fn)
				if eng.Pending() > 8192 {
					eng.Run()
				}
			}
			eng.Run()
		}},
		{"EngineRun", func(b *testing.B) {
			eng := sim.NewEngine()
			var fired int
			fn := func() { fired++ }
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.After(sim.Cycle(i%64), fn)
				if eng.Pending() > 1024 {
					eng.RunUntil(eng.Now() + 32)
				}
			}
			eng.Run()
			if fired != b.N {
				b.Fatalf("fired %d of %d", fired, b.N)
			}
		}},
	}

	suite := &resultio.BenchSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      opt.Scale,
	}
	for _, bm := range benchmarks {
		fmt.Fprintf(os.Stderr, "bench %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s did not run (did it fail?)", bm.name)
		}
		suite.Results = append(suite.Results, resultio.BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return resultio.WriteBenchSuite(out, suite)
}
