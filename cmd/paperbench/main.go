// Command paperbench regenerates the tables and figures of the paper's
// evaluation section, and records the simulator's own performance.
//
// Usage:
//
//	paperbench -fig all            # every figure at the default scale
//	paperbench -fig 6 -scale 0.5   # one figure, reduced scale
//	paperbench -table1             # the simulated-system configuration
//	paperbench -fig 6 -csv         # machine-readable output
//
// Performance tooling:
//
//	paperbench -fig 6 -cpuprofile cpu.pprof   # profile a sweep
//	paperbench -fig 6 -memprofile mem.pprof   # heap profile at exit
//	paperbench -bench-json BENCH_baseline.json -scale 0.25
//	                                # measure the perf-trajectory suite
//	paperbench -bench-compare BENCH_baseline.json -scale 0.1 -workloads bfs,sssp
//	                                # fail if simulated cycles drift >2%
//
// Memory-management pipeline overrides (see DESIGN.md, "Memory-management
// pipeline"):
//
//	paperbench -fig 6 -planner thrash-guard
//	paperbench -fig 6 -replacement lru -prefetcher none
//
// Observability (see DESIGN.md, "Observability"):
//
//	paperbench -fig 6 -metrics-json metrics.json   # one entry per cell
//	paperbench -fig 6 -trace-out trace.json        # Chrome trace_event
//	paperbench -fig 6 -check-invariants 10000      # periodic checker
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"uvmsim"
	"uvmsim/internal/cliutil"
	"uvmsim/internal/experiments"
	"uvmsim/internal/mm"
	"uvmsim/internal/obs"
	"uvmsim/internal/plot"
	"uvmsim/internal/resultio"
	"uvmsim/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options collects every parsed flag so the tool body is testable
// without a process boundary.
type options struct {
	fig          string
	table1       bool
	csv          bool
	plotOut      bool
	sample       uint64
	cpuprofile   string
	memprofile   string
	benchJSON    string
	benchCompare string

	benchClusterJSON    string
	benchClusterCompare string

	benchScale1JSON    string
	benchScale1Compare string

	benchCXLJSON    string
	benchCXLCompare string

	serveLoad    string
	serveClients int

	tournament            bool
	tournamentOut         string
	tournamentOversub     uint64
	tournamentPlanners    string
	tournamentPrefetchers string

	metricsJSON     string
	traceOut        string
	traceSample     uint64
	checkInvariants uint64

	opt uvmsim.ExperimentOptions
}

// run parses args and executes the selected modes, returning the process
// exit code. All failures — flag errors, validation errors, unwritable
// output paths, invariant violations — surface as a one-line message on
// stderr and a non-zero code, never a panic.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("paperbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		o              options
		scale          = fs.Float64("scale", 1.0, "workload scale factor (1.0 = paper size)")
		workloads      = fs.String("workloads", "", "comma-separated workload subset (default: all)")
		workers        = fs.Int("workers", 0, "concurrent sweep cells per figure (0 = one per core)")
		clusterWorkers = fs.Int("cluster-workers", 0, "PDES worker threads per multi-GPU cluster run (0 or 1 = sequential; results are identical either way)")
		snapshot       = fs.String("snapshot", "on", "prefix-share sweep cells that differ only in policy via fork snapshots: on|off (results are identical either way)")
		planner        = fs.String("planner", "", "migration planner: "+strings.Join(mm.PlannerNames(), ", ")+" (default: threshold)")
		replacement    = fs.String("replacement", "", "replacement policy for eviction: lru, lfu (default: paper pairing)")
		prefetcher     = fs.String("prefetcher", "", "prefetcher: tree, none, sequential (default: tree)")
	)
	fs.StringVar(&o.fig, "fig", "", "figure to regenerate: 1-8, or 'all'")
	fs.BoolVar(&o.table1, "table1", false, "print Table I (simulated system configuration)")
	fs.BoolVar(&o.csv, "csv", false, "emit CSV instead of aligned tables")
	fs.BoolVar(&o.plotOut, "plot", false, "render tables as terminal bar charts")
	fs.Uint64Var(&o.sample, "sample", 256, "Fig. 3 sampling density (1 = every access)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file at exit")
	fs.StringVar(&o.benchJSON, "bench-json", "", "run the benchmark suite and write a versioned JSON report to this file ('-' for stdout)")
	fs.StringVar(&o.benchCompare, "bench-compare", "", "run the Fig. 6/7 sweep once and fail if its simulated cycles drift >2% from the baseline suite in this file")
	fs.StringVar(&o.benchClusterJSON, "bench-cluster-json", "", "run the multi-GPU cluster benchmark (sequential vs PDES) and write a versioned JSON report to this file ('-' for stdout)")
	fs.StringVar(&o.benchClusterCompare, "bench-cluster-compare", "", "re-run the cluster benchmark at the baseline's own scale and fail if its makespan drifts >2% from this file")
	fs.StringVar(&o.benchScale1JSON, "bench-scale1-json", "", "run the Fig. 6/7 sweep with snapshot forking off and on, fail unless the simulated cycles match, and write the A/B wall-clock report to this file ('-' for stdout)")
	fs.StringVar(&o.benchScale1Compare, "bench-scale1-compare", "", "re-run the snapshot A/B at the baseline's own scale and fail on cycle drift >2% or a snapshot slowdown beyond the floor")
	fs.StringVar(&o.benchCXLJSON, "bench-cxl-json", "", "run the CXL co-location benchmark (every pool policy over one tenant mix) and write a versioned JSON report to this file ('-' for stdout)")
	fs.StringVar(&o.benchCXLCompare, "bench-cxl-compare", "", "re-run the co-location benchmark and fail unless every scenario is byte-identical to this file")
	fs.StringVar(&o.serveLoad, "serve-load", "", "run the simd sweep-service load test (cold vs fully-cached warm phase) and write a versioned JSON report to this file ('-' for stdout)")
	fs.IntVar(&o.serveClients, "serve-clients", 8, "with -serve-load, concurrent clients in the warm phase")
	fs.BoolVar(&o.tournament, "tournament", false, "run the pipeline tournament: rank every planner x prefetch-governor combination by total simulated cycles over the workload matrix")
	fs.StringVar(&o.tournamentOut, "tournament-out", "", "with -tournament, also write the leaderboard as a versioned JSON suite to this file ('-' for stdout)")
	fs.Uint64Var(&o.tournamentOversub, "tournament-oversub", 125, "with -tournament, working set as % of device memory per cell")
	fs.StringVar(&o.tournamentPlanners, "tournament-planners", "", "with -tournament, comma-separated planner subset (default: "+strings.Join(experiments.DefaultTournamentPlanners(), ",")+")")
	fs.StringVar(&o.tournamentPrefetchers, "tournament-prefetchers", "", "with -tournament, comma-separated prefetch-governor subset ('default' = the built-in kind governor)")
	fs.StringVar(&o.metricsJSON, "metrics-json", "", "write the observability metric registry of every simulation cell to this file as JSON ('-' for stdout)")
	fs.StringVar(&o.traceOut, "trace-out", "", "write cycle-stamped timeline traces to this file (.jsonl = compact JSONL, otherwise Chrome trace_event JSON)")
	fs.Uint64Var(&o.traceSample, "trace-sample", 1, "keep one of every N trace spans (with -trace-out; 1 = all)")
	fs.Uint64Var(&o.checkInvariants, "check-invariants", 0, "run the cross-component invariant checker every N cycles (0 = off)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !o.table1 && o.fig == "" && o.benchJSON == "" && o.benchCompare == "" &&
		o.benchClusterJSON == "" && o.benchClusterCompare == "" &&
		o.benchScale1JSON == "" && o.benchScale1Compare == "" &&
		o.benchCXLJSON == "" && o.benchCXLCompare == "" && o.serveLoad == "" && !o.tournament {
		fs.Usage()
		return 2
	}
	if *scale <= 0 {
		fmt.Fprintf(stderr, "paperbench: -scale must be positive, got %v\n", *scale)
		return 2
	}
	if *workers < 0 {
		fmt.Fprintf(stderr, "paperbench: -workers must be non-negative, got %d\n", *workers)
		return 2
	}
	if *clusterWorkers < 0 {
		fmt.Fprintf(stderr, "paperbench: -cluster-workers must be non-negative, got %d\n", *clusterWorkers)
		return 2
	}
	snapOn, err := cliutil.ParseOnOff("snapshot", *snapshot)
	if err != nil {
		fmt.Fprintf(stderr, "paperbench: %v\n", err)
		return 2
	}
	o.opt = uvmsim.ExperimentOptions{Scale: *scale, Workers: *workers, Snapshot: snapOn}
	if *workloads != "" {
		o.opt.Workloads = cliutil.SplitList(*workloads)
	}
	if *planner != "" || *replacement != "" || *prefetcher != "" || *clusterWorkers > 0 {
		base := uvmsim.DefaultConfig()
		base.ClusterWorkers = *clusterWorkers
		name, err := cliutil.ParseComponentName("planner", *planner, mm.PlannerNames())
		if err != nil {
			fmt.Fprintf(stderr, "paperbench: %v\n", err)
			return 2
		}
		base.MMPipeline.Planner = name
		// The replacement override rides on the evictor seam rather than
		// Config.Replacement: sweeps apply WithPolicy per cell, which
		// re-pairs Replacement with the migration policy, while a named
		// evictor survives the pairing.
		if rp, ok, err := cliutil.ParseReplacement(*replacement); err != nil {
			fmt.Fprintf(stderr, "paperbench: %v\n", err)
			return 2
		} else if ok {
			base.MMPipeline.Evictor = strings.ToLower(rp.String())
		}
		if *prefetcher != "" {
			pf, err := cliutil.ParsePrefetcher(*prefetcher)
			if err != nil {
				fmt.Fprintf(stderr, "paperbench: %v\n", err)
				return 2
			}
			base.Prefetcher = pf
		}
		o.opt.Base = base
	}
	if err := execute(o, stdout, stderr); err != nil {
		fmt.Fprintf(stderr, "paperbench: %v\n", err)
		return 2
	}
	return 0
}

// execute runs the selected modes with profiling hooks wrapped around
// them; it returns instead of exiting so deferred profile writers run.
func execute(o options, stdout, stderr io.Writer) (err error) {
	// An invariant violation fails fast as a panic carrying a
	// cycle-stamped diagnostic; surface it as an ordinary error.
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(*obs.Violation); ok {
				err = v
				return
			}
			panic(r)
		}
	}()

	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.memprofile != "" {
		defer func() {
			f, err := os.Create(o.memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "paperbench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "paperbench: %v\n", err)
			}
		}()
	}

	// Open observability outputs before any sweep runs, so an unwritable
	// path fails in milliseconds rather than after minutes of simulation.
	outs := make(map[string]io.WriteCloser)
	defer func() {
		//simlint:allow maporder -- closing output files; order cannot reach results
		for _, f := range outs {
			f.Close()
		}
	}()
	for _, path := range []string{o.metricsJSON, o.traceOut} {
		if path == "" || path == "-" || outs[path] != nil {
			continue
		}
		f, ferr := os.Create(path)
		if ferr != nil {
			return ferr
		}
		outs[path] = f
	}

	suite := obs.NewSuite(obs.Options{
		Metrics:     o.metricsJSON != "",
		Trace:       o.traceOut != "",
		TraceSample: o.traceSample,
		CheckEvery:  o.checkInvariants,
	})
	if suite.Options().Enabled() {
		o.opt.Observe = suite.NewRun
	}

	if o.benchJSON != "" {
		if err := runBenchSuite(o.benchJSON, o.opt, stdout, stderr); err != nil {
			return err
		}
	}
	if o.benchCompare != "" {
		if err := runBenchCompare(o.benchCompare, o.opt, stdout, stderr); err != nil {
			return err
		}
	}
	if o.benchClusterJSON != "" {
		if err := runBenchClusterSuite(o.benchClusterJSON, o.opt, stdout, stderr); err != nil {
			return err
		}
	}
	if o.benchClusterCompare != "" {
		if err := runBenchClusterCompare(o.benchClusterCompare, o.opt, stdout, stderr); err != nil {
			return err
		}
	}
	if o.benchScale1JSON != "" {
		if err := runBenchScale1Suite(o.benchScale1JSON, o.opt, stdout, stderr); err != nil {
			return err
		}
	}
	if o.benchScale1Compare != "" {
		if err := runBenchScale1Compare(o.benchScale1Compare, o.opt, stdout, stderr); err != nil {
			return err
		}
	}
	if o.benchCXLJSON != "" {
		if err := runBenchCXLSuite(o.benchCXLJSON, stdout, stderr); err != nil {
			return err
		}
	}
	if o.benchCXLCompare != "" {
		if err := runBenchCXLCompare(o.benchCXLCompare, stdout, stderr); err != nil {
			return err
		}
	}
	if o.serveLoad != "" {
		if err := runServeLoad(o.serveLoad, o.opt, o.serveClients, stdout, stderr); err != nil {
			return err
		}
	}
	if o.tournament {
		if err := runTournament(o, stdout, stderr); err != nil {
			return err
		}
	}
	if o.table1 {
		fmt.Fprint(stdout, uvmsim.Table1(uvmsim.DefaultConfig()))
		fmt.Fprintln(stdout)
	}
	if o.fig != "" {
		if err := runFigures(o.fig, o.csv, o.plotOut, o.sample, o.opt, stdout); err != nil {
			return err
		}
	}

	if o.metricsJSON != "" {
		w := io.Writer(stdout)
		if o.metricsJSON != "-" {
			w = outs[o.metricsJSON]
		}
		if err := suite.WriteMetricsJSON(w); err != nil {
			return err
		}
		if o.metricsJSON != "-" {
			fmt.Fprintf(stderr, "wrote %s\n", o.metricsJSON)
		}
	}
	if o.traceOut != "" {
		var err error
		if strings.HasSuffix(o.traceOut, ".jsonl") {
			err = suite.WriteTraceJSONL(outs[o.traceOut])
		} else {
			err = suite.WriteChromeTrace(outs[o.traceOut])
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", o.traceOut)
	}
	return nil
}

func runFigures(fig string, csv, plotOut bool, sample uint64, opt uvmsim.ExperimentOptions, stdout io.Writer) error {
	emit := func(t *uvmsim.Table) {
		switch {
		case csv:
			fmt.Fprint(stdout, t.CSV())
		case plotOut:
			rows := make([]plot.NamedRow, len(t.Rows))
			for i, r := range t.Rows {
				rows[i] = plot.NamedRow{Label: r.Label, Values: r.Values}
			}
			fmt.Fprint(stdout, plot.GroupedBars(t.Title+"\n"+t.Metric, t.Columns, rows, 50))
		default:
			fmt.Fprint(stdout, t.Format())
		}
		fmt.Fprintln(stdout)
	}

	figs := strings.Split(fig, ",")
	if fig == "all" {
		figs = []string{"1", "2", "3", "4", "5", "6", "7", "8"}
	}
	for _, f := range figs {
		switch f {
		case "1":
			emit(uvmsim.Fig1(opt))
		case "2":
			for _, w := range []string{"fdtd", "sssp"} {
				fmt.Fprintln(stdout, uvmsim.Fig2(w, opt))
			}
		case "3":
			series := uvmsim.Fig3("fdtd", opt, []int{2, 4}, sample)
			for _, it := range []int{2, 4} {
				fmt.Fprintf(stdout, "Figure 3 (fdtd, iteration %d):\n%s\n", it, series[it])
			}
			series = uvmsim.Fig3("sssp", opt, []int{3, 5}, sample)
			for _, it := range []int{3, 5} {
				fmt.Fprintf(stdout, "Figure 3 (sssp, iteration %d):\n%s\n", it, series[it])
			}
		case "4":
			emit(uvmsim.Fig4(opt))
		case "5":
			emit(uvmsim.Fig5(opt))
		case "6":
			emit(uvmsim.Fig6(opt))
		case "7":
			emit(uvmsim.Fig7(opt))
		case "6+7", "67":
			rt, th := uvmsim.Fig6And7(opt)
			emit(rt)
			emit(th)
		case "8":
			emit(uvmsim.Fig8(opt))
		case "multigpu":
			// The paper's §VIII future-work extension.
			emit(uvmsim.MultiGPU("ra", opt, 125))
			emit(uvmsim.MultiGPU("sssp", opt, 125))
		case "hints":
			// Extension: profiled cudaMemAdvise-style hints vs Adaptive.
			hintOpt := opt
			if len(hintOpt.Workloads) == 0 {
				hintOpt.Workloads = uvmsim.IrregularWorkloads()
			}
			emit(uvmsim.OracleHints(hintOpt, 125))
		default:
			return fmt.Errorf("unknown figure %q", f)
		}
	}
	return nil
}

// runTournament ranks every requested planner x prefetch-governor
// combination by total simulated cycles over the workload matrix,
// printing the leaderboard (table, CSV or bar chart) and optionally
// archiving it as a versioned JSON suite.
func runTournament(o options, stdout, stderr io.Writer) error {
	topt := uvmsim.TournamentOptions{
		Options:        o.opt,
		OversubPercent: o.tournamentOversub,
	}
	if o.tournamentPlanners != "" {
		for _, p := range cliutil.SplitList(o.tournamentPlanners) {
			name, err := cliutil.ParseComponentName("planner", p, mm.PlannerNames())
			if err != nil {
				return err
			}
			topt.Planners = append(topt.Planners, name)
		}
	}
	if o.tournamentPrefetchers != "" {
		for _, p := range cliutil.SplitList(o.tournamentPrefetchers) {
			// "default" enters the built-in kind governor (empty registry
			// name), letting it compete against named governors.
			if p == "default" {
				topt.Prefetchers = append(topt.Prefetchers, "")
				continue
			}
			name, err := cliutil.ParseComponentName("prefetch governor", p, mm.PrefetchGovernorNames())
			if err != nil {
				return err
			}
			topt.Prefetchers = append(topt.Prefetchers, name)
		}
	}
	res := uvmsim.Tournament(topt)
	t := res.Table()
	switch {
	case o.csv:
		fmt.Fprint(stdout, res.CSV())
	case o.plotOut:
		rows := make([]plot.NamedRow, len(t.Rows))
		for i, r := range t.Rows {
			rows[i] = plot.NamedRow{Label: r.Label, Values: r.Values}
		}
		fmt.Fprint(stdout, plot.GroupedBars(t.Title+"\n"+t.Metric, t.Columns, rows, 50))
	default:
		fmt.Fprint(stdout, t.Format())
	}
	fmt.Fprintln(stdout)
	if o.tournamentOut == "" {
		return nil
	}
	suite := res.Suite()
	suite.GoVersion = runtime.Version()
	if o.tournamentOut == "-" {
		return resultio.WriteTournamentSuite(stdout, suite)
	}
	f, err := os.Create(o.tournamentOut)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := resultio.WriteTournamentSuite(f, suite); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", o.tournamentOut)
	return nil
}

// runBenchSuite measures the perf-trajectory suite — the Fig. 1 and
// Fig. 6/7 sweeps plus the event-engine microbenchmarks that guard the
// hot path — and writes a versioned resultio.BenchSuite.
func runBenchSuite(path string, opt uvmsim.ExperimentOptions, stdout io.Writer, stderr io.Writer) error {
	// fig67Cycles records the deterministic simulated-cycle total of the
	// Fig. 6/7 sweep (every iteration produces the same value); it is
	// archived alongside the wall-clock measurement so bench-compare has
	// a machine-independent drift metric.
	var fig67Cycles uint64
	benchmarks := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"Fig1", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if uvmsim.Fig1(opt) == nil {
					b.Fatal("empty figure")
				}
			}
		}},
		{"Fig6And7", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rt, th, cycles := uvmsim.Fig6And7Cycles(opt)
				if rt == nil || th == nil {
					b.Fatal("empty figure")
				}
				fig67Cycles = cycles
			}
		}},
		{"EngineSchedule", func(b *testing.B) {
			eng := sim.NewEngine()
			fn := func() {}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.After(sim.Cycle(i%512), fn)
				if eng.Pending() > 8192 {
					eng.Run()
				}
			}
			eng.Run()
		}},
		{"EngineRun", func(b *testing.B) {
			eng := sim.NewEngine()
			var fired int
			fn := func() { fired++ }
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.After(sim.Cycle(i%64), fn)
				if eng.Pending() > 1024 {
					eng.RunUntil(eng.Now() + 32)
				}
			}
			eng.Run()
			if fired != b.N {
				b.Fatalf("fired %d of %d", fired, b.N)
			}
		}},
	}

	suite := &resultio.BenchSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      opt.Scale,
		Workloads:  opt.Workloads,
	}
	for _, bm := range benchmarks {
		fmt.Fprintf(stderr, "bench %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		if r.N == 0 {
			return fmt.Errorf("benchmark %s did not run (did it fail?)", bm.name)
		}
		res := resultio.BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if bm.name == "Fig6And7" {
			res.SimCycles = fig67Cycles
		}
		suite.Results = append(suite.Results, res)
	}

	out := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return resultio.WriteBenchSuite(out, suite)
}

// benchDriftLimit is the allowed relative drift of the simulated-cycle
// total against the committed baseline.
const benchDriftLimit = 0.02

// runBenchCompare is the bench-smoke gate: it reruns the Fig. 6/7 sweep
// once (untimed — the metric is simulated cycles, not wall clock) and
// fails when the total drifts more than benchDriftLimit from the
// archived baseline. An intentional behaviour change regenerates the
// baseline with -bench-json at the same -scale and -workloads.
func runBenchCompare(path string, opt uvmsim.ExperimentOptions, stdout, stderr io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := resultio.ReadBenchSuite(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	if base.Scale != opt.Scale {
		return fmt.Errorf("baseline %s was measured at scale %v, not %v; pass -scale %v or regenerate",
			path, base.Scale, opt.Scale, base.Scale)
	}
	if bw, ow := strings.Join(base.Workloads, ","), strings.Join(opt.Workloads, ","); bw != ow {
		return fmt.Errorf("baseline %s was measured over workloads %q, not %q; pass -workloads %q or regenerate",
			path, bw, ow, bw)
	}
	var want *resultio.BenchResult
	for i := range base.Results {
		if base.Results[i].Name == "Fig6And7" && base.Results[i].SimCycles > 0 {
			want = &base.Results[i]
		}
	}
	if want == nil {
		return fmt.Errorf("baseline %s carries no Fig6And7 simulated-cycle total; regenerate it with -bench-json", path)
	}
	fmt.Fprintf(stderr, "bench-compare: running the Fig. 6/7 sweep at scale %v...\n", opt.Scale)
	_, _, got := uvmsim.Fig6And7Cycles(opt)
	drift := float64(got)/float64(want.SimCycles) - 1
	fmt.Fprintf(stdout, "bench-compare: Fig6And7 simulated cycles %d vs baseline %d (drift %+.3f%%)\n",
		got, want.SimCycles, drift*100)
	if math.Abs(drift) > benchDriftLimit {
		return fmt.Errorf("simulated cycles drifted %+.2f%% from %s (limit ±%.0f%%)",
			drift*100, path, benchDriftLimit*100)
	}
	fmt.Fprintf(stdout, "bench-compare: PASS (within ±%.0f%%)\n", benchDriftLimit*100)
	return nil
}

// Cluster-bench parameters: the §VIII extension's irregular centerpiece
// on a 4-GPU cluster at the paper's oversubscription point.
const (
	benchClusterWorkload = "ra"
	benchClusterGPUs     = 4
	benchClusterOversub  = 125
)

// benchClusterSetup builds the cluster benchmark's workload and
// configuration with the given PDES worker count (0 = sequential).
func benchClusterSetup(opt uvmsim.ExperimentOptions, workers int) (*uvmsim.Workload, uvmsim.Config) {
	base := opt.Base
	if base.NumSMs == 0 {
		base = uvmsim.DefaultConfig()
	}
	w := uvmsim.BuildWorkload(benchClusterWorkload, opt.Scale)
	cfg := base.WithPolicy(uvmsim.PolicyAdaptive).
		WithOversubscription(w.WorkingSet()/benchClusterGPUs, benchClusterOversub)
	cfg.ClusterWorkers = workers
	return w, cfg
}

// runBenchClusterSuite measures one 4-GPU cluster run sequentially and
// under the conservative-PDES coordinator (GOMAXPROCS workers), checks
// the two makespans agree (they are byte-identical by design), and
// writes a versioned report carrying the wall-clock numbers and the
// simulated-cycle checksum bench-cluster-compare gates on.
func runBenchClusterSuite(path string, opt uvmsim.ExperimentOptions, stdout, stderr io.Writer) error {
	w, seqCfg := benchClusterSetup(opt, 0)
	_, parCfg := benchClusterSetup(opt, runtime.GOMAXPROCS(0))
	var seqCycles, parCycles uint64
	benchmarks := []struct {
		name   string
		cfg    uvmsim.Config
		cycles *uint64
	}{
		{"ClusterSequential", seqCfg, &seqCycles},
		{"ClusterParallel", parCfg, &parCycles},
	}
	suite := &resultio.BenchSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      opt.Scale,
		Workloads:  []string{benchClusterWorkload},
	}
	for _, bm := range benchmarks {
		fmt.Fprintf(stderr, "bench %s (%d GPUs)...\n", bm.name, benchClusterGPUs)
		cfg, cycles := bm.cfg, bm.cycles
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				*cycles = uvmsim.NewCluster(w, cfg, benchClusterGPUs).Run().Cycles
			}
		})
		if r.N == 0 {
			return fmt.Errorf("benchmark %s did not run (did it fail?)", bm.name)
		}
		suite.Results = append(suite.Results, resultio.BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			SimCycles:   *cycles,
		})
	}
	if seqCycles != parCycles {
		return fmt.Errorf("cluster makespan diverged: sequential %d vs parallel %d (PDES must be byte-identical)",
			seqCycles, parCycles)
	}
	fmt.Fprintf(stdout, "bench-cluster: makespan %d cycles, parallel speedup %.2fx at GOMAXPROCS=%d\n",
		seqCycles, suite.Results[0].NsPerOp/suite.Results[1].NsPerOp, runtime.GOMAXPROCS(0))

	out := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return resultio.WriteBenchSuite(out, suite)
}

// runBenchClusterCompare extends the bench-smoke gate to cluster runs:
// it re-runs the cluster once in PDES mode at the baseline's own scale
// (the cluster checksum is self-contained, so it needs no -scale
// agreement with the single-GPU baseline) and fails when the makespan
// drifts more than benchDriftLimit. The recorded checksum came from the
// sequential run, so running the parallel mode here also re-proves the
// sequential/PDES equivalence on every gate pass.
func runBenchClusterCompare(path string, opt uvmsim.ExperimentOptions, stdout, stderr io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := resultio.ReadBenchSuite(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	var want *resultio.BenchResult
	for i := range base.Results {
		if strings.HasPrefix(base.Results[i].Name, "Cluster") && base.Results[i].SimCycles > 0 {
			want = &base.Results[i]
			break
		}
	}
	if want == nil {
		return fmt.Errorf("baseline %s carries no cluster simulated-cycle total; regenerate it with -bench-cluster-json", path)
	}
	clOpt := opt
	clOpt.Scale = base.Scale
	w, cfg := benchClusterSetup(clOpt, runtime.GOMAXPROCS(0))
	fmt.Fprintf(stderr, "bench-cluster-compare: running a %d-GPU %s cluster at scale %v...\n",
		benchClusterGPUs, benchClusterWorkload, base.Scale)
	got := uvmsim.NewCluster(w, cfg, benchClusterGPUs).Run().Cycles
	drift := float64(got)/float64(want.SimCycles) - 1
	fmt.Fprintf(stdout, "bench-cluster-compare: makespan %d vs baseline %d (drift %+.3f%%)\n",
		got, want.SimCycles, drift*100)
	if math.Abs(drift) > benchDriftLimit {
		return fmt.Errorf("cluster makespan drifted %+.2f%% from %s (limit ±%.0f%%)",
			drift*100, path, benchDriftLimit*100)
	}
	fmt.Fprintf(stdout, "bench-cluster-compare: PASS (within ±%.0f%%)\n", benchDriftLimit*100)
	return nil
}

// Scale-1 snapshot A/B benchmark result names.
const (
	benchScale1Off = "Fig6And7SnapshotOff"
	benchScale1On  = "Fig6And7SnapshotOn"
)

// benchScale1SpeedupFloor is the minimum allowed off/on wall-time ratio
// in the compare gate. Snapshot forking is a pure execution strategy —
// it must never make the sweep meaningfully slower, but the shared
// prefix shrinks with divergence (at 125% oversubscription policies
// split early), so the CI gate asserts "not a slowdown" rather than a
// machine-dependent speedup.
const benchScale1SpeedupFloor = 0.85

// benchScale1Run measures one Fig. 6/7 sweep mode and returns the
// benchmark result carrying its deterministic simulated-cycle total.
func benchScale1Run(name string, snapshot bool, opt uvmsim.ExperimentOptions, stderr io.Writer) (resultio.BenchResult, error) {
	mo := opt
	mo.Snapshot = snapshot
	fmt.Fprintf(stderr, "bench %s (scale %v)...\n", name, opt.Scale)
	var cycles uint64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rt, th, got := uvmsim.Fig6And7Cycles(mo)
			if rt == nil || th == nil {
				b.Fatal("empty figure")
			}
			cycles = got
		}
	})
	if r.N == 0 {
		return resultio.BenchResult{}, fmt.Errorf("benchmark %s did not run (did it fail?)", name)
	}
	return resultio.BenchResult{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		SimCycles:   cycles,
	}, nil
}

// runBenchScale1Suite measures the snapshot A/B — the Fig. 6/7 sweep
// with forking disabled, then enabled — fails unless both modes produce
// the identical simulated-cycle total (forking must be byte-identical),
// and archives the wall-clock pair as a versioned report. Run at
// -scale 1.0 this is the committed BENCH_scale1.json trajectory record.
func runBenchScale1Suite(path string, opt uvmsim.ExperimentOptions, stdout, stderr io.Writer) error {
	suite := &resultio.BenchSuite{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      opt.Scale,
		Workloads:  opt.Workloads,
	}
	off, err := benchScale1Run(benchScale1Off, false, opt, stderr)
	if err != nil {
		return err
	}
	on, err := benchScale1Run(benchScale1On, true, opt, stderr)
	if err != nil {
		return err
	}
	if off.SimCycles != on.SimCycles {
		return fmt.Errorf("snapshot forking changed simulated cycles: off %d vs on %d (must be byte-identical)",
			off.SimCycles, on.SimCycles)
	}
	suite.Results = append(suite.Results, off, on)
	fmt.Fprintf(stdout, "bench-scale1: Fig6And7 %d simulated cycles, snapshot off %.1fs vs on %.1fs (%.2fx)\n",
		on.SimCycles, off.NsPerOp/1e9, on.NsPerOp/1e9, off.NsPerOp/on.NsPerOp)

	out := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return resultio.WriteBenchSuite(out, suite)
}

// runBenchScale1Compare is the CI gate over the snapshot A/B baseline:
// it re-runs both modes at the baseline's own scale and workloads and
// fails when (a) the two modes' simulated cycles diverge, (b) the total
// drifts more than benchDriftLimit from the baseline, or (c) the
// snapshot mode falls below the wall-time floor against the no-snapshot
// mode measured in the same process.
func runBenchScale1Compare(path string, opt uvmsim.ExperimentOptions, stdout, stderr io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := resultio.ReadBenchSuite(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	var want *resultio.BenchResult
	for i := range base.Results {
		if base.Results[i].Name == benchScale1On && base.Results[i].SimCycles > 0 {
			want = &base.Results[i]
		}
	}
	if want == nil {
		return fmt.Errorf("baseline %s carries no %s simulated-cycle total; regenerate it with -bench-scale1-json", path, benchScale1On)
	}
	mo := opt
	mo.Scale = base.Scale
	mo.Workloads = base.Workloads
	off, err := benchScale1Run(benchScale1Off, false, mo, stderr)
	if err != nil {
		return err
	}
	on, err := benchScale1Run(benchScale1On, true, mo, stderr)
	if err != nil {
		return err
	}
	if off.SimCycles != on.SimCycles {
		return fmt.Errorf("snapshot forking changed simulated cycles: off %d vs on %d (must be byte-identical)",
			off.SimCycles, on.SimCycles)
	}
	drift := float64(on.SimCycles)/float64(want.SimCycles) - 1
	speedup := off.NsPerOp / on.NsPerOp
	fmt.Fprintf(stdout, "bench-scale1-compare: %d simulated cycles vs baseline %d (drift %+.3f%%), snapshot wall-time ratio %.2fx\n",
		on.SimCycles, want.SimCycles, drift*100, speedup)
	if math.Abs(drift) > benchDriftLimit {
		return fmt.Errorf("simulated cycles drifted %+.2f%% from %s (limit ±%.0f%%)",
			drift*100, path, benchDriftLimit*100)
	}
	if speedup < benchScale1SpeedupFloor {
		return fmt.Errorf("snapshot mode ran %.2fx the speed of the no-snapshot mode (floor %.2fx): forking has become a slowdown",
			speedup, benchScale1SpeedupFloor)
	}
	fmt.Fprintf(stdout, "bench-scale1-compare: PASS (cycles within ±%.0f%%, wall-time ratio ≥ %.2fx)\n",
		benchDriftLimit*100, benchScale1SpeedupFloor)
	return nil
}
