package main

import (
	"fmt"
	"io"
	"os"
	"runtime"

	"uvmsim/internal/config"
	"uvmsim/internal/cxl"
	"uvmsim/internal/mm"
	"uvmsim/internal/resultio"
)

// Co-location bench parameters: two GPUs sharing a CXL pool, two
// tenants co-scheduled on GPU 0 (an irregular graph pair with a
// read-mostly shared region) and one regular tenant alone on GPU 1.
// The mix is chosen so the pooled tier actually arbitrates: the shared
// blocks are read-hot on both GPUs, which counter-arbitrated
// replication serves locally while naive migrate-on-touch ping-pongs
// them.
const benchCXLSeed = 3

func benchCXLScenario(policy string) cxl.ScenarioConfig {
	cfg := config.Default()
	cfg.CXLPoolBytes = 64 << 20
	cfg.PoolPolicy = policy
	return cxl.ScenarioConfig{
		Cfg:  cfg,
		GPUs: 2,
		Tenants: []cxl.TenantSpec{
			{Workload: "bfs", GPU: 0, Priority: 1},
			{Workload: "sssp", GPU: 0, Priority: 0},
			{Workload: "backprop", GPU: 1, Priority: 1},
		},
		Seed:    benchCXLSeed,
		Workers: 1,
	}
}

// runBenchCXLScenarios executes the canonical tenant mix once per pool
// policy and returns the populated suite. Every field is deterministic,
// so a regenerated suite is byte-identical up to the Go version stamp.
func runBenchCXLScenarios(stderr io.Writer) (*resultio.CXLSuite, error) {
	suite := &resultio.CXLSuite{GoVersion: runtime.Version()}
	for _, policy := range mm.PoolPolicyNames() {
		sc := benchCXLScenario(policy)
		fmt.Fprintf(stderr, "bench-cxl: %d tenants on %d GPUs under %s...\n",
			len(sc.Tenants), sc.GPUs, policy)
		s, err := cxl.NewScenario(sc)
		if err != nil {
			return nil, err
		}
		r, err := s.Run()
		if err != nil {
			return nil, err
		}
		tenants := make([]string, len(sc.Tenants))
		for i, t := range sc.Tenants {
			tenants[i] = fmt.Sprintf("%s:%d:%d", t.Workload, t.GPU, t.Priority)
		}
		suite.Scenarios = append(suite.Scenarios, resultio.CXLScenario{
			Name:    policy,
			Policy:  policy,
			GPUs:    sc.GPUs,
			Tenants: tenants,
			Seed:    benchCXLSeed,
			Result:  *r,
		})
	}
	return suite, nil
}

// checkCXLHeadline enforces the suite's reason to exist: the
// counter-arbitrated replication policy must finish the co-location mix
// in fewer simulated cycles than naive migrate-on-touch.
func checkCXLHeadline(suite *resultio.CXLSuite) error {
	repl, naive := suite.Scenario("cxl-repl"), suite.Scenario("cxl-migrate")
	if repl == nil || naive == nil {
		return fmt.Errorf("suite is missing the cxl-repl/cxl-migrate pair")
	}
	if repl.Result.SimCycles >= naive.Result.SimCycles {
		return fmt.Errorf("cxl-repl %d cycles not better than cxl-migrate %d — replication stopped paying off",
			repl.Result.SimCycles, naive.Result.SimCycles)
	}
	return nil
}

// runBenchCXLSuite runs the co-location benchmark across every pool
// policy and writes the versioned suite bench-cxl-compare gates on.
func runBenchCXLSuite(path string, stdout, stderr io.Writer) error {
	suite, err := runBenchCXLScenarios(stderr)
	if err != nil {
		return err
	}
	if err := checkCXLHeadline(suite); err != nil {
		return err
	}
	repl, naive := suite.Scenario("cxl-repl"), suite.Scenario("cxl-migrate")
	fmt.Fprintf(stdout, "bench-cxl: cxl-repl %d cycles vs cxl-migrate %d (%.2fx), %d replications, fairness %.3f\n",
		repl.Result.SimCycles, naive.Result.SimCycles,
		float64(naive.Result.SimCycles)/float64(repl.Result.SimCycles),
		repl.Result.Replications, repl.Result.Fairness)

	out := stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	return resultio.WriteCXLSuite(out, suite)
}

// runBenchCXLCompare re-runs the committed co-location suite and fails
// on ANY divergence: the scenarios are deterministic, so unlike the
// wall-clock drift gates this one compares checksums exactly.
func runBenchCXLCompare(path string, stdout, stderr io.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	base, err := resultio.ReadCXLSuite(f)
	if err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	got, err := runBenchCXLScenarios(stderr)
	if err != nil {
		return err
	}
	for i := range base.Scenarios {
		want := &base.Scenarios[i]
		have := got.Scenario(want.Name)
		if have == nil {
			return fmt.Errorf("baseline scenario %q no longer runs; regenerate with -bench-cxl-json", want.Name)
		}
		if have.Result.Checksum != want.Result.Checksum || have.Result.SimCycles != want.Result.SimCycles {
			return fmt.Errorf("scenario %q diverged from %s: cycles %d/checksum %d vs baseline %d/%d",
				want.Name, path, have.Result.SimCycles, have.Result.Checksum,
				want.Result.SimCycles, want.Result.Checksum)
		}
	}
	if err := checkCXLHeadline(got); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "bench-cxl-compare: PASS (%d scenarios byte-identical to %s)\n",
		len(base.Scenarios), path)
	return nil
}
