package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uvmsim/internal/resultio"
)

// The serve load test must pass its own acceptance gates end-to-end
// (warm phase fully cached, byte-identical payloads, >=10x throughput)
// and archive a schema-valid versioned suite.
func TestServeLoadWritesValidSuite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_serve.json")
	code, stdout, stderr := runCLI(t,
		"-serve-load", path, "-scale", "0.05", "-workloads", "bfs", "-serve-clients", "2")
	if code != 0 {
		t.Fatalf("exited %d:\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "speedup") {
		t.Fatalf("missing throughput report:\n%s", stdout)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	suite, err := resultio.ReadBenchSuite(f)
	if err != nil {
		t.Fatal(err)
	}
	if suite.Scale != 0.05 {
		t.Fatalf("suite scale %v", suite.Scale)
	}
	byName := make(map[string]resultio.BenchResult)
	for _, r := range suite.Results {
		byName[r.Name] = r
	}
	cold, warm := byName["ServeColdCells"], byName["ServeWarmCells"]
	if cold.Iterations == 0 || warm.Iterations == 0 {
		t.Fatalf("suite missing cell phases: %+v", suite.Results)
	}
	if cold.SimCycles == 0 || cold.SimCycles != warm.SimCycles {
		t.Fatalf("phases disagree on the deterministic cycle total: %d vs %d", cold.SimCycles, warm.SimCycles)
	}
	if cold.NsPerOp < warm.NsPerOp*serveWarmSpeedup {
		t.Fatalf("warm cells not >=%dx faster: cold %.0fns vs warm %.0fns", serveWarmSpeedup, cold.NsPerOp, warm.NsPerOp)
	}
	if _, ok := byName["ServeColdJobs"]; !ok {
		t.Fatal("suite missing job-latency results")
	}
}
