// Command tracedump characterizes a workload's memory access pattern:
// per-allocation page access-frequency distributions (the data behind
// Fig. 2) and page-versus-time access samples per iteration (Fig. 3),
// as summaries, raw CSV, or terminal scatter plots.
//
// Usage:
//
//	tracedump -workload sssp -mode freq
//	tracedump -workload fdtd -mode pattern -iters 2,4 -sample 256
//	tracedump -workload sssp -mode pattern -iters 3,5 -plot
//	tracedump -workload sssp -mode freq -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uvmsim"
	"uvmsim/internal/experiments"
	"uvmsim/internal/plot"
	"uvmsim/internal/sim"
)

func main() {
	var (
		workload = flag.String("workload", "sssp", "workload name: "+strings.Join(uvmsim.Workloads(), ", "))
		scale    = flag.Float64("scale", 1.0, "workload scale factor")
		mode     = flag.String("mode", "freq", "freq (Fig. 2) or pattern (Fig. 3)")
		iters    = flag.String("iters", "2,4", "iterations to dump in pattern mode")
		sample   = flag.Uint64("sample", 256, "keep one sample per N accesses in pattern mode")
		csv      = flag.Bool("csv", false, "freq mode: emit raw per-page CSV instead of the summary")
		plotOut  = flag.Bool("plot", false, "pattern mode: render terminal scatter plots instead of CSV")
		width    = flag.Int("width", 100, "plot width in characters")
		height   = flag.Int("height", 24, "plot height in characters")
	)
	flag.Parse()

	opt := uvmsim.ExperimentOptions{Scale: *scale}
	switch *mode {
	case "freq":
		if *csv {
			tr := experiments.RunTrace(*workload, opt, 0)
			fmt.Print(tr.Collector.DumpFrequencyCSV())
		} else {
			fmt.Print(uvmsim.Fig2(*workload, opt))
		}
	case "pattern":
		want, err := parseIters(*iters)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracedump:", err)
			os.Exit(2)
		}
		if *plotOut {
			plotPatterns(*workload, opt, want, *sample, *width, *height)
			return
		}
		series := uvmsim.Fig3(*workload, opt, want, *sample)
		for _, it := range want {
			fmt.Printf("# %s iteration %d\n%s", *workload, it, series[it])
		}
	default:
		fmt.Fprintf(os.Stderr, "tracedump: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func parseIters(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad iteration %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// plotPatterns renders one scatter per requested iteration: time on the
// x axis, page number on the y axis, 'r' for reads and 'w' for writes —
// the visual of the paper's Figure 3.
func plotPatterns(workload string, opt uvmsim.ExperimentOptions, want []int, sample uint64, w, h int) {
	tr := experiments.RunTrace(workload, opt, sample)
	for _, it := range want {
		lo, hi := sim.MaxCycle, sim.Cycle(0)
		for _, sp := range tr.Result.Spans {
			if sp.Iter == it {
				if sp.Start < lo {
					lo = sp.Start
				}
				if sp.End > hi {
					hi = sp.End
				}
			}
		}
		var pts []plot.Point
		for _, s := range tr.Collector.Samples() {
			if s.Cycle < lo || s.Cycle > hi {
				continue
			}
			mark := 'r'
			if s.Write {
				mark = 'w'
			}
			pts = append(pts, plot.Point{X: float64(s.Cycle), Y: float64(s.Page), Mark: mark})
		}
		title := fmt.Sprintf("%s iteration %d: page (y) vs cycle (x), r=read w=write", workload, it)
		fmt.Println(plot.Scatter(title, pts, w, h))
	}
}
