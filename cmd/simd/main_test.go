package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uvmsim/internal/serve"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// The smoke mode is the CI gate; it must pass end-to-end in-process.
func TestSmokeMode(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-smoke", "-workers", "2")
	if code != 0 {
		t.Fatalf("smoke exited %d: %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "payload byte-identical") || !strings.Contains(stdout, "PASS") {
		t.Fatalf("smoke output missing assertions:\n%s", stdout)
	}
}

// The smoke must pass with snapshot sharing disabled too — the A/B
// escape hatch cannot change behavior, only execution strategy.
func TestSmokeModeSnapshotOff(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-smoke", "-workers", "2", "-snapshot", "off")
	if code != 0 {
		t.Fatalf("smoke -snapshot=off exited %d: %s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "PASS") {
		t.Fatalf("smoke output missing assertions:\n%s", stdout)
	}
}

// An unparseable -snapshot value is a usage error: exit 2, before any
// server or job work happens.
func TestSnapshotFlagInvalidValue(t *testing.T) {
	code, _, stderr := runCLI(t, "-smoke", "-snapshot", "maybe")
	if code != 2 {
		t.Fatalf("-snapshot=maybe exited %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "snapshot") {
		t.Fatalf("stderr does not name the offending flag:\n%s", stderr)
	}
}

func TestPrintFigureJob(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-fig", "fig6", "-scale", "0.05", "-workloads", "bfs,ra", "-print-job")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	var req serve.JobRequest
	if err := json.Unmarshal([]byte(stdout), &req); err != nil {
		t.Fatalf("print-job output is not a job request: %v\n%s", err, stdout)
	}
	if req.Name != "fig6" || len(req.Workloads) != 2 || len(req.Policies) != 4 {
		t.Fatalf("unexpected fig6 job: %+v", req)
	}
	if req.Base == nil || req.Base.Penalty != 8 {
		t.Fatalf("fig6 job lost the p=8 operating point: %+v", req.Base)
	}
}

func TestPrintColoJob(t *testing.T) {
	code, stdout, stderr := runCLI(t, "-fig", "colo", "-print-job")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	var req serve.JobRequest
	if err := json.Unmarshal([]byte(stdout), &req); err != nil {
		t.Fatalf("print-job output is not a job request: %v\n%s", err, stdout)
	}
	if req.Name != "colo" || len(req.Colo) != 3 {
		t.Fatalf("unexpected colo job: %+v", req)
	}
	if req.Colo[0].Tenants != "bfs:0:1,sssp:0:0,backprop:1:1" || req.Colo[0].PoolMB != 64 {
		t.Fatalf("colo job lost the canonical mix: %+v", req.Colo[0])
	}
}

func TestSubmitFilePrintJob(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.json")
	if err := os.WriteFile(path, []byte(`{"workloads":["bfs"],"scale":0.05}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runCLI(t, "-submit", path, "-print-job")
	if code != 0 {
		t.Fatalf("exited %d: %s", code, stderr)
	}
	var req serve.JobRequest
	if err := json.Unmarshal([]byte(stdout), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Workloads) != 1 || req.Scale != 0.05 {
		t.Fatalf("job file lost fields: %+v", req)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{},                             // no mode
		{"-addr", "x", "-smoke"},       // two modes
		{"-fig", "fig2", "-print-job"}, // unmapped figure
		{"-fig", "x", "-submit", "y", "-print-job"}, // mutually exclusive
		{"-smoke", "extra"},                         // stray operand
	}
	for _, args := range cases {
		if code, _, _ := runCLI(t, args...); code == 0 {
			t.Errorf("args %q: exited 0", args)
		}
	}
}
