// Command simd runs the sweep service: a long-running HTTP/JSON server
// that accepts simulation sweep jobs, shards their cells across a
// bounded worker pool, and memoizes every completed cell in a
// content-addressed result cache (see DESIGN.md §14).
//
// Server:
//
//	simd -addr 127.0.0.1:8642              # serve until interrupted
//	simd -addr 127.0.0.1:8642 -workers 4   # bound concurrent cells
//
// Client:
//
//	simd -server http://127.0.0.1:8642 -submit job.json   # submit a job file
//	simd -server http://127.0.0.1:8642 -fig fig6          # submit a figure sweep
//	simd -fig fig6 -print-job                             # print the job JSON, don't submit
//	simd -server ... -fig tournament -out result.json     # save the result payload
//	simd -server ... -fig colo                            # CXL co-location pool-policy sweep
//
// Smoke:
//
//	simd -smoke    # in-process end-to-end: submit, resubmit, assert the
//	               # resubmission is a pure cache hit with identical bytes
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"uvmsim/internal/cliutil"
	"uvmsim/internal/experiments"
	"uvmsim/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options collects the parsed flags so the tool body is testable
// without a process boundary.
type options struct {
	addr     string
	workers  int
	maxCells int
	noSnap   bool

	server   string
	submit   string
	fig      string
	scale    float64
	wl       string
	printJob bool
	out      string

	smoke bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.addr, "addr", "", "serve mode: listen address (e.g. 127.0.0.1:8642)")
	fs.IntVar(&o.workers, "workers", 0, "concurrent simulation cells across all jobs (0 = one per core)")
	fs.IntVar(&o.maxCells, "max-cells", 0, "reject jobs expanding to more cells than this (0 = 4096)")
	snapshot := fs.String("snapshot", "on", "serve mode: snapshot/fork prefix sharing across a job's policy cells (on|off; results are byte-identical either way)")
	fs.StringVar(&o.server, "server", "", "client mode: server base URL")
	fs.StringVar(&o.submit, "submit", "", "client mode: job request JSON file to submit ('-' = stdin)")
	fs.StringVar(&o.fig, "fig", "", "client mode: submit a figure sweep ("+
		fmt.Sprint(experiments.FigureNames())+", 'tournament' or 'colo')")
	fs.Float64Var(&o.scale, "scale", 1.0, "with -fig, workload scale factor (1.0 = paper size)")
	fs.StringVar(&o.wl, "workloads", "", "with -fig, comma-separated workload subset (default: the figure's own)")
	fs.BoolVar(&o.printJob, "print-job", false, "with -fig or -submit, print the job request JSON and exit without submitting")
	fs.StringVar(&o.out, "out", "", "client mode: write the result payload to this file ('-' = stdout)")
	fs.BoolVar(&o.smoke, "smoke", false, "run the in-process end-to-end smoke test and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "simd: unexpected arguments %q\n", fs.Args())
		return 2
	}
	snapOn, err := cliutil.ParseOnOff("snapshot", *snapshot)
	if err != nil {
		fmt.Fprintf(stderr, "simd: %v\n", err)
		return 2
	}
	o.noSnap = !snapOn
	modes := 0
	for _, on := range []bool{o.addr != "", o.server != "" || o.printJob, o.smoke} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		fs.Usage()
		return 2
	}
	switch {
	case o.smoke:
		err = runSmoke(o, stdout, stderr)
	case o.addr != "":
		err = runServe(o, stderr)
	default:
		err = runClient(o, stdout, stderr)
	}
	if err != nil {
		fmt.Fprintf(stderr, "simd: %v\n", err)
		return 1
	}
	return 0
}

// runServe listens on the configured address and serves until the
// process is interrupted.
func runServe(o options, stderr io.Writer) error {
	s := serve.NewServer(serve.Options{Workers: o.workers, MaxCells: o.maxCells, NoSnapshot: o.noSnap})
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "simd: listening on http://%s\n", ln.Addr())
	return http.Serve(ln, s.Handler())
}

// buildJob resolves the client's job request from -submit or -fig.
func buildJob(o options) (serve.JobRequest, error) {
	switch {
	case o.submit != "" && o.fig != "":
		return serve.JobRequest{}, fmt.Errorf("-submit and -fig are mutually exclusive")
	case o.submit != "":
		var in io.Reader = os.Stdin
		if o.submit != "-" {
			f, err := os.Open(o.submit)
			if err != nil {
				return serve.JobRequest{}, err
			}
			defer f.Close()
			in = f
		}
		dec := json.NewDecoder(in)
		dec.DisallowUnknownFields()
		var req serve.JobRequest
		if err := dec.Decode(&req); err != nil {
			return serve.JobRequest{}, fmt.Errorf("decoding %s: %v", o.submit, err)
		}
		return req, nil
	case o.fig != "":
		eo := experiments.Options{Scale: o.scale}
		if o.wl != "" {
			eo.Workloads = cliutil.SplitList(o.wl)
		}
		if o.fig == "tournament" {
			return experiments.TournamentJob(experiments.TournamentOptions{Options: eo}), nil
		}
		if o.fig == "colo" {
			// The canonical BENCH_cxl.json mix under every pool policy;
			// -scale/-workloads do not apply to co-location cells.
			return experiments.ColoJob(experiments.ColoJobOptions{}), nil
		}
		return experiments.FigureJob(o.fig, eo)
	default:
		return serve.JobRequest{}, fmt.Errorf("client mode needs -submit or -fig")
	}
}

// runClient submits one job and follows it to completion, printing a
// progress line per update and a result summary.
func runClient(o options, stdout, stderr io.Writer) error {
	req, err := buildJob(o)
	if err != nil {
		return err
	}
	if o.printJob {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(req)
	}
	c := &serve.Client{BaseURL: o.server}
	st, payload, err := c.RunJob(req, func(u serve.JobStatus) {
		fmt.Fprintf(stderr, "simd: %s %s %d/%d cells (%d cached)\n",
			u.ID, u.State, u.DoneCells, u.TotalCells, u.CacheHits)
	})
	if err != nil {
		return err
	}
	doc, err := serve.DecodeResult(payload)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "simd: job %s done: %d cells, %d from cache\n",
		st.ID, len(doc.Cells)+len(doc.Colo), st.CacheHits)
	if o.out == "" {
		return nil
	}
	if o.out == "-" {
		_, err = stdout.Write(payload)
		return err
	}
	if err := os.WriteFile(o.out, payload, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "wrote %s\n", o.out)
	return nil
}

// runSmoke is the CI serve-smoke gate: an in-process server on a
// loopback port, a small bfs job submitted twice, and hard assertions
// that the resubmission is a pure cache hit returning byte-identical
// payload, that the progress stream delivered updates, and that the
// metrics and cache endpoints agree with what happened.
func runSmoke(o options, stdout, stderr io.Writer) error {
	s := serve.NewServer(serve.Options{Workers: o.workers, NoSnapshot: o.noSnap})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	//simlint:allow goroleak -- Serve returns once the deferred srv.Close below tears the listener down
	go srv.Serve(ln) //nolint:errcheck // shut down via Close below
	defer srv.Close()
	c := &serve.Client{BaseURL: "http://" + ln.Addr().String()}
	fmt.Fprintf(stderr, "serve-smoke: server on %s\n", c.BaseURL)

	job := serve.JobRequest{
		Name:            "smoke",
		Scale:           0.05,
		Workloads:       []string{"bfs"},
		OversubPercents: []uint64{125},
		Policies:        []string{"disabled", "adaptive"},
	}
	var updates int
	st1, cold, err := c.RunJob(job, func(serve.JobStatus) { updates++ })
	if err != nil {
		return fmt.Errorf("cold job: %v", err)
	}
	if updates < 2 {
		return fmt.Errorf("progress stream delivered %d updates, want at least initial+terminal", updates)
	}
	if st1.CacheHits != 0 {
		return fmt.Errorf("cold job reported %d cache hits", st1.CacheHits)
	}
	doc, err := serve.DecodeResult(cold)
	if err != nil {
		return fmt.Errorf("cold payload: %v", err)
	}
	fmt.Fprintf(stdout, "serve-smoke: cold job %s: %d cells simulated\n", st1.ID, len(doc.Cells))

	st2, warm, err := c.RunJob(job, nil)
	if err != nil {
		return fmt.Errorf("warm job: %v", err)
	}
	if st2.CacheHits != st2.TotalCells {
		return fmt.Errorf("warm job: %d/%d cache hits, want all", st2.CacheHits, st2.TotalCells)
	}
	if !bytes.Equal(cold, warm) {
		return fmt.Errorf("warm payload differs from cold payload (%d vs %d bytes)", len(cold), len(warm))
	}
	fmt.Fprintf(stdout, "serve-smoke: warm job %s: %d/%d cells from cache, payload byte-identical\n",
		st2.ID, st2.CacheHits, st2.TotalCells)

	cs, err := c.CacheStats()
	if err != nil {
		return err
	}
	if cs.Entries != st1.TotalCells || cs.Hits < uint64(st2.TotalCells) {
		return fmt.Errorf("cache stats inconsistent with run: %+v", cs)
	}
	snap, err := c.Metrics()
	if err != nil {
		return err
	}
	for _, check := range []struct {
		counter string
		want    uint64
	}{
		{"serve.jobs.completed", 2},
		{"serve.cells.simulated", uint64(st1.TotalCells)},
		{"serve.cells.cache_hits", uint64(st2.TotalCells)},
	} {
		if got := snap.Counter(check.counter); got != check.want {
			return fmt.Errorf("metrics: %s = %d, want %d", check.counter, got, check.want)
		}
	}
	fmt.Fprintf(stdout, "serve-smoke: PASS (%d entries, %d hits, metrics consistent)\n", cs.Entries, cs.Hits)
	return nil
}
