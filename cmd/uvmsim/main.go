// Command uvmsim runs one workload under one configuration and prints
// the resulting metrics.
//
// Usage:
//
//	uvmsim -workload sssp -policy adaptive -oversub 125 [-scale 1.0]
//	       [-ts 8] [-p 8] [-replacement lfu] [-prefetcher tree]
//	       [-granularity 2m|64k] [-spans] [-csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"uvmsim"
	"uvmsim/internal/cliutil"
	"uvmsim/internal/memunits"
	"uvmsim/internal/resultio"
	"uvmsim/internal/workloads"
)

func main() {
	var (
		workload    = flag.String("workload", "sssp", "workload name: "+strings.Join(uvmsim.AllWorkloads(), ", "))
		scale       = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper size)")
		oversub     = flag.Uint64("oversub", 125, "working set as % of device memory (100 = fits)")
		arch        = flag.String("arch", "pascal", "architecture preset: pascal, volta")
		policy      = flag.String("policy", "adaptive", "migration policy: disabled, always, oversub, adaptive")
		ts          = flag.Uint64("ts", 8, "static access counter threshold")
		penalty     = flag.Uint64("p", 8, "multiplicative migration penalty")
		replacement = flag.String("replacement", "", "override replacement policy: lru, lfu (default: paper pairing)")
		prefetcher  = flag.String("prefetcher", "tree", "prefetcher: tree, none, sequential")
		granularity = flag.String("granularity", "2m", "eviction granularity: 2m, 64k")
		graphFile   = flag.String("graph", "", "edge-list file for bfs/sssp (src dst [weight] per line; overrides the synthetic input)")
		spans       = flag.Bool("spans", false, "print per-kernel timing spans")
		csv         = flag.Bool("csv", false, "print metrics as CSV")
		jsonOut     = flag.String("json", "", "write a self-describing JSON record of the run to this file")
	)
	flag.Parse()

	pol, err := cliutil.ParsePolicy(*policy)
	if err != nil {
		fatal(err)
	}
	cfg, err := uvmsim.PresetConfig(*arch)
	if err != nil {
		fatal(err)
	}
	cfg = cfg.WithPolicy(pol)
	cfg.StaticThreshold = *ts
	cfg.Penalty = *penalty
	if rp, ok, err := cliutil.ParseReplacement(*replacement); err != nil {
		fatal(err)
	} else if ok {
		cfg.Replacement = rp
	}
	if cfg.Prefetcher, err = cliutil.ParsePrefetcher(*prefetcher); err != nil {
		fatal(err)
	}
	if cfg.EvictionGranularity, err = cliutil.ParseGranularity(*granularity); err != nil {
		fatal(err)
	}

	known := false
	for _, w := range uvmsim.AllWorkloads() {
		if w == *workload {
			known = true
			break
		}
	}
	if !known {
		fatal(fmt.Errorf("unknown workload %q (have %s)", *workload, strings.Join(uvmsim.AllWorkloads(), ", ")))
	}
	var b *uvmsim.Workload
	if *graphFile != "" {
		b, err = buildFromGraphFile(*workload, *graphFile)
		if err != nil {
			fatal(err)
		}
	} else {
		b = uvmsim.BuildWorkload(*workload, *scale)
	}
	cfg = cfg.WithOversubscription(b.WorkingSet(), *oversub)

	class := "irregular"
	if b.Regular {
		class = "regular"
	}
	fmt.Printf("workload=%s (%s) ws=%s capacity=%s policy=%v ts=%d p=%d replacement=%v prefetcher=%v\n",
		b.Name, class, memunits.HumanBytes(b.WorkingSet()),
		memunits.HumanBytes(cfg.DeviceMemBytes), cfg.Policy, cfg.StaticThreshold,
		cfg.Penalty, cfg.Replacement, cfg.Prefetcher)

	res := uvmsim.Run(b, cfg)
	c := res.Counters
	if *csv {
		fmt.Println("metric,value")
		for _, kv := range [][2]interface{}{
			{"cycles", c.Cycles}, {"near_accesses", c.NearAccesses},
			{"remote_reads", c.RemoteReads}, {"remote_writes", c.RemoteWrites},
			{"far_faults", c.FarFaults}, {"fault_batches", c.FaultBatches},
			{"migrated_pages", c.MigratedPages}, {"prefetched_pages", c.PrefetchedPages},
			{"thrashed_pages", c.ThrashedPages}, {"evicted_pages", c.EvictedPages},
			{"written_back_pages", c.WrittenBackPages},
			{"tlb_hits", c.TLBHits}, {"tlb_misses", c.TLBMisses}, {"tlb_shootdowns", c.TLBShootdowns},
			{"h2d_bytes", c.H2DBytes}, {"d2h_bytes", c.D2HBytes},
			{"instructions", c.Instructions}, {"warps_retired", c.WarpsRetired},
		} {
			fmt.Printf("%s,%v\n", kv[0], kv[1])
		}
	} else {
		fmt.Println(c.String())
	}
	if *spans {
		for _, sp := range res.Spans {
			fmt.Printf("kernel %-24s iter %2d  [%12d .. %12d]  %d cycles\n",
				sp.Name, sp.Iter, sp.Start, sp.End, sp.End-sp.Start)
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := resultio.Write(f, resultio.FromResult(res, *scale, *oversub)); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *jsonOut)
	}
}

// buildFromGraphFile loads an edge-list graph and instantiates bfs or
// sssp over it.
func buildFromGraphFile(workload, path string) (*uvmsim.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := workloads.ParseEdgeList(f)
	if err != nil {
		return nil, err
	}
	switch workload {
	case "bfs":
		return workloads.BFSOnGraph(g)
	case "sssp":
		return workloads.SSSPOnGraph(g, 40)
	default:
		return nil, fmt.Errorf("-graph only applies to bfs and sssp, not %q", workload)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uvmsim:", err)
	os.Exit(2)
}
