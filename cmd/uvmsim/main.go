// Command uvmsim runs one workload under one configuration and prints
// the resulting metrics.
//
// Usage:
//
//	uvmsim -workload sssp -policy adaptive -oversub 125 [-scale 1.0]
//	       [-ts 8] [-p 8] [-replacement lfu] [-prefetcher tree]
//	       [-granularity 2m|64k] [-spans] [-csv]
//
// Memory-management pipeline stages (see DESIGN.md, "Memory-management
// pipeline") are selected by registry name; empty picks the built-in
// stage for the configuration:
//
//	uvmsim -workload sssp -planner thrash-guard
//	uvmsim -workload sssp -evictor lru -batcher dedup
//
// Observability (see DESIGN.md, "Observability"):
//
//	uvmsim -workload sssp -metrics-json metrics.json     # metric registry
//	uvmsim -workload sssp -trace-out trace.json          # Chrome trace_event
//	uvmsim -workload sssp -trace-out t.jsonl -trace-sample 8
//	uvmsim -workload sssp -check-invariants 10000        # periodic checker
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"uvmsim"
	"uvmsim/internal/cliutil"
	"uvmsim/internal/memunits"
	"uvmsim/internal/mm"
	"uvmsim/internal/obs"
	"uvmsim/internal/resultio"
	"uvmsim/internal/snapshot"
	"uvmsim/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options collects every parsed flag so the simulation body is testable
// without a process boundary.
type options struct {
	workload    string
	scale       float64
	oversub     uint64
	gpus        int
	workers     int
	arch        string
	policy      string
	ts          uint64
	penalty     uint64
	replacement string
	prefetcher  string
	granularity string
	planner     string
	evictor     string
	batcher     string
	pfgov       string

	seed          uint64
	banditEpsilon uint64
	banditEpoch   uint64

	tenants      string
	cxlPoolMB    uint64
	cxlBW        float64
	cxlLatency   uint64
	cxlThreshold uint64
	poolPolicy   string
	coloEpochs   int
	graphFile    string
	spans        bool
	csv          bool
	jsonOut      string

	metricsJSON     string
	traceOut        string
	traceSample     uint64
	checkInvariants uint64

	snapshotCheck string
}

// run parses args and executes one simulation, returning the process
// exit code. All failures — flag errors, validation errors, unwritable
// output paths, invariant violations — surface as a one-line message on
// stderr and a non-zero code, never a panic.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("uvmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.workload, "workload", "sssp", "workload name: "+strings.Join(uvmsim.AllWorkloads(), ", "))
	fs.Float64Var(&o.scale, "scale", 1.0, "workload scale factor (1.0 = paper size)")
	fs.Uint64Var(&o.oversub, "oversub", 125, "working set as % of device memory (100 = fits)")
	fs.IntVar(&o.gpus, "gpus", 1, "cluster size: run the workload bulk-synchronously across this many GPUs (multi-GPU §VIII extension)")
	fs.IntVar(&o.workers, "workers", 0, "cluster PDES worker threads with -gpus > 1 (0 or 1 = sequential; results are identical either way)")
	fs.StringVar(&o.arch, "arch", "pascal", "architecture preset: pascal, volta")
	fs.StringVar(&o.policy, "policy", "adaptive", "migration policy: disabled, always, oversub, adaptive")
	fs.Uint64Var(&o.ts, "ts", 8, "static access counter threshold")
	fs.Uint64Var(&o.penalty, "p", 8, "multiplicative migration penalty")
	fs.StringVar(&o.replacement, "replacement", "", "override replacement policy: lru, lfu (default: paper pairing)")
	fs.StringVar(&o.prefetcher, "prefetcher", "tree", "prefetcher: tree, none, sequential")
	fs.StringVar(&o.granularity, "granularity", "2m", "eviction granularity: 2m, 64k")
	fs.StringVar(&o.planner, "planner", "", "migration planner: "+strings.Join(mm.PlannerNames(), ", ")+" (default: threshold)")
	fs.StringVar(&o.evictor, "evictor", "", "eviction engine: "+strings.Join(mm.EvictorNames(), ", ")+" (default: configured replacement)")
	fs.StringVar(&o.batcher, "batcher", "", "fault batcher: "+strings.Join(mm.BatcherNames(), ", ")+" (default: accumulate)")
	fs.StringVar(&o.pfgov, "pf-governor", "", "prefetch governor: "+strings.Join(mm.PrefetchGovernorNames(), ", ")+" (default: the -prefetcher kind)")
	fs.Uint64Var(&o.seed, "seed", 1, "seed for the learned pipeline stages (runs with equal seeds are byte-identical)")
	fs.Uint64Var(&o.banditEpsilon, "bandit-epsilon", 10, "bandit exploration probability in percent (0 = never explore)")
	fs.Uint64Var(&o.banditEpoch, "bandit-epoch", 0, "bandit learning epoch in simulated cycles (0 = built-in default)")
	fs.StringVar(&o.tenants, "tenants", "", "run the multi-tenant co-location mode: comma-separated workload:gpu[:priority] tenants sharing -gpus GPUs over a pooled CXL tier (see DESIGN.md §15)")
	fs.Uint64Var(&o.cxlPoolMB, "cxl-pool-mb", 0, "pooled CXL tier capacity in MiB (required with -tenants)")
	fs.Float64Var(&o.cxlBW, "cxl-bw", 0, "CXL port bandwidth in bytes/cycle (0 = built-in default)")
	fs.Uint64Var(&o.cxlLatency, "cxl-latency", 0, "CXL port latency in cycles (0 = built-in default)")
	fs.Uint64Var(&o.cxlThreshold, "cxl-threshold", 0, "read-counter threshold for replica grants (0 = built-in default)")
	fs.StringVar(&o.poolPolicy, "pool-policy", "", "pooled-tier policy: "+strings.Join(mm.PoolPolicyNames(), ", ")+" (default: cxl-repl)")
	fs.IntVar(&o.coloEpochs, "colo-epochs", 0, "co-location barrier epochs (0 = built-in default)")
	fs.StringVar(&o.graphFile, "graph", "", "edge-list file for bfs/sssp (src dst [weight] per line; overrides the synthetic input)")
	fs.BoolVar(&o.spans, "spans", false, "print per-kernel timing spans")
	fs.BoolVar(&o.csv, "csv", false, "print metrics as CSV")
	fs.StringVar(&o.jsonOut, "json", "", "write a self-describing JSON record of the run to this file")
	fs.StringVar(&o.metricsJSON, "metrics-json", "", "write the observability metric registry to this file as JSON")
	fs.StringVar(&o.traceOut, "trace-out", "", "write a cycle-stamped timeline trace to this file (.jsonl = compact JSONL, otherwise Chrome trace_event JSON)")
	fs.Uint64Var(&o.traceSample, "trace-sample", 1, "keep one of every N trace spans (with -trace-out; 1 = all)")
	fs.Uint64Var(&o.checkInvariants, "check-invariants", 0, "run the cross-component invariant checker every N cycles (0 = off)")
	fs.StringVar(&o.snapshotCheck, "snapshot-check", "off", "run the simulation twice through the snapshot/fork engine and fail unless the forked run is byte-identical to the scratch run (on|off)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if err := simulate(o, stdout, stderr); err != nil {
		fmt.Fprintln(stderr, "uvmsim:", err)
		return 2
	}
	return 0
}

// simulate validates the options, runs the workload and writes every
// requested output.
func simulate(o options, stdout, stderr io.Writer) (err error) {
	pol, err := cliutil.ParsePolicy(o.policy)
	if err != nil {
		return err
	}
	cfg, err := uvmsim.PresetConfig(o.arch)
	if err != nil {
		return err
	}
	if o.ts == 0 {
		return fmt.Errorf("-ts must be positive (a zero access-counter threshold is meaningless)")
	}
	if o.penalty == 0 {
		return fmt.Errorf("-p must be positive (a zero migration penalty is meaningless)")
	}
	if o.scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %v", o.scale)
	}
	if o.oversub == 0 {
		return fmt.Errorf("-oversub must be positive, got 0")
	}
	if o.gpus < 1 {
		return fmt.Errorf("-gpus must be at least 1, got %d", o.gpus)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", o.workers)
	}
	snapCheck, err := cliutil.ParseOnOff("snapshot-check", o.snapshotCheck)
	if err != nil {
		return err
	}
	if snapCheck {
		switch {
		case o.tenants != "":
			return fmt.Errorf("-snapshot-check applies to single-GPU runs only (got -tenants)")
		case o.gpus > 1:
			return fmt.Errorf("-snapshot-check applies to single-GPU runs only (got -gpus %d)", o.gpus)
		case o.metricsJSON != "" || o.traceOut != "" || o.checkInvariants != 0:
			return fmt.Errorf("-snapshot-check cannot run with observability attached (forks reject observed components); drop -metrics-json/-trace-out/-check-invariants")
		}
	}
	if o.tenants != "" {
		return simulateColocation(o, stdout, stderr)
	}
	for _, f := range []struct {
		name string
		set  bool
	}{
		{"-cxl-pool-mb", o.cxlPoolMB != 0},
		{"-cxl-bw", o.cxlBW != 0},
		{"-cxl-latency", o.cxlLatency != 0},
		{"-cxl-threshold", o.cxlThreshold != 0},
		{"-pool-policy", o.poolPolicy != ""},
		{"-colo-epochs", o.coloEpochs != 0},
	} {
		if f.set {
			return fmt.Errorf("%s applies to the co-location mode only (set -tenants)", f.name)
		}
	}
	if o.gpus > 1 && (o.spans || o.jsonOut != "") {
		return fmt.Errorf("-spans and -json apply to single-GPU runs only (got -gpus %d)", o.gpus)
	}
	if o.banditEpsilon > 100 {
		return fmt.Errorf("-bandit-epsilon is a percentage, got %d (want 0-100)", o.banditEpsilon)
	}
	cfg = cfg.WithPolicy(pol)
	cfg.StaticThreshold = o.ts
	cfg.Penalty = o.penalty
	if rp, ok, err := cliutil.ParseReplacement(o.replacement); err != nil {
		return err
	} else if ok {
		cfg.Replacement = rp
	}
	if cfg.Prefetcher, err = cliutil.ParsePrefetcher(o.prefetcher); err != nil {
		return err
	}
	if cfg.EvictionGranularity, err = cliutil.ParseGranularity(o.granularity); err != nil {
		return err
	}
	if cfg.MMPipeline.Planner, err = cliutil.ParseComponentName("planner", o.planner, mm.PlannerNames()); err != nil {
		return err
	}
	if cfg.MMPipeline.Evictor, err = cliutil.ParseComponentName("evictor", o.evictor, mm.EvictorNames()); err != nil {
		return err
	}
	if cfg.MMPipeline.Batcher, err = cliutil.ParseComponentName("batcher", o.batcher, mm.BatcherNames()); err != nil {
		return err
	}
	if cfg.MMPipeline.Prefetcher, err = cliutil.ParseComponentName("prefetch governor", o.pfgov, mm.PrefetchGovernorNames()); err != nil {
		return err
	}
	cfg.PolicySeed = o.seed
	cfg.BanditEpsilonPct = o.banditEpsilon
	cfg.BanditEpochCycles = o.banditEpoch

	known := false
	for _, w := range uvmsim.AllWorkloads() {
		if w == o.workload {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("unknown workload %q (have %s)", o.workload, strings.Join(uvmsim.AllWorkloads(), ", "))
	}
	var b *uvmsim.Workload
	if o.graphFile != "" {
		b, err = buildFromGraphFile(o.workload, o.graphFile)
		if err != nil {
			return err
		}
	} else {
		b = uvmsim.BuildWorkload(o.workload, o.scale)
	}
	// Each GPU of a cluster gets capacity for its 1/N share of the
	// working set at the requested oversubscription, mirroring the
	// multi-GPU harness (gpus=1 keeps the single-GPU sizing).
	cfg = cfg.WithOversubscription(b.WorkingSet()/uint64(o.gpus), o.oversub)
	cfg.ClusterWorkers = o.workers

	// Open every output file before the simulation runs, so an
	// unwritable path fails in milliseconds rather than after minutes of
	// simulated work.
	outs := make(map[string]*os.File)
	defer func() {
		//simlint:allow maporder -- closing output files; order cannot reach results
		for _, f := range outs {
			f.Close()
		}
	}()
	for _, path := range []string{o.jsonOut, o.metricsJSON, o.traceOut} {
		if path == "" || outs[path] != nil {
			continue
		}
		f, ferr := os.Create(path)
		if ferr != nil {
			return ferr
		}
		outs[path] = f
	}

	class := "irregular"
	if b.Regular {
		class = "regular"
	}
	fmt.Fprintf(stdout, "workload=%s (%s) ws=%s capacity=%s policy=%v ts=%d p=%d replacement=%v prefetcher=%v\n",
		b.Name, class, memunits.HumanBytes(b.WorkingSet()),
		memunits.HumanBytes(cfg.DeviceMemBytes), cfg.Policy, cfg.StaticThreshold,
		cfg.Penalty, cfg.Replacement, cfg.Prefetcher)

	suite := obs.NewSuite(obs.Options{
		Metrics:     o.metricsJSON != "",
		Trace:       o.traceOut != "",
		TraceSample: o.traceSample,
		CheckEvery:  o.checkInvariants,
	})
	runName := fmt.Sprintf("%s/%v/%d%%", b.Name, cfg.Policy, o.oversub)

	if o.gpus > 1 {
		if err := simulateCluster(o, b, cfg, suite, runName, stdout); err != nil {
			return err
		}
	} else {
		var res *uvmsim.Result
		if snapCheck {
			var st snapshot.Stats
			res, st, err = snapshot.SelfCheck(b, cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "snapshot-check: OK (forked=%d scratch=%d, %d of %d kernel launches shared)\n",
				st.Forked, st.Scratch, st.SharedKernels, st.TotalKernels)
		} else {
			s := uvmsim.New(b, cfg)
			s.Observe(suite.NewRun(runName))
			res, err = runChecked(s)
			if err != nil {
				return err
			}
		}

		c := res.Counters
		if o.csv {
			fmt.Fprintln(stdout, "metric,value")
			for _, kv := range [][2]interface{}{
				{"cycles", c.Cycles}, {"near_accesses", c.NearAccesses},
				{"remote_reads", c.RemoteReads}, {"remote_writes", c.RemoteWrites},
				{"far_faults", c.FarFaults}, {"fault_batches", c.FaultBatches},
				{"migrated_pages", c.MigratedPages}, {"prefetched_pages", c.PrefetchedPages},
				{"thrashed_pages", c.ThrashedPages}, {"evicted_pages", c.EvictedPages},
				{"written_back_pages", c.WrittenBackPages},
				{"tlb_hits", c.TLBHits}, {"tlb_misses", c.TLBMisses}, {"tlb_shootdowns", c.TLBShootdowns},
				{"h2d_bytes", c.H2DBytes}, {"d2h_bytes", c.D2HBytes},
				{"instructions", c.Instructions}, {"warps_retired", c.WarpsRetired},
			} {
				fmt.Fprintf(stdout, "%s,%v\n", kv[0], kv[1])
			}
		} else {
			fmt.Fprintln(stdout, c.String())
		}
		if o.spans {
			for _, sp := range res.Spans {
				fmt.Fprintf(stdout, "kernel %-24s iter %2d  [%12d .. %12d]  %d cycles\n",
					sp.Name, sp.Iter, sp.Start, sp.End, sp.End-sp.Start)
			}
		}
		if o.jsonOut != "" {
			rec := resultio.FromResult(res, o.scale, o.oversub)
			if o.metricsJSON != "" {
				snap := suite.Collect()
				rec.Metrics = &snap.Runs[0]
			}
			if err := resultio.Write(outs[o.jsonOut], rec); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "wrote %s\n", o.jsonOut)
		}
	}
	if o.metricsJSON != "" {
		if err := suite.WriteMetricsJSON(outs[o.metricsJSON]); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", o.metricsJSON)
	}
	if o.traceOut != "" {
		if strings.HasSuffix(o.traceOut, ".jsonl") {
			err = suite.WriteTraceJSONL(outs[o.traceOut])
		} else {
			err = suite.WriteChromeTrace(outs[o.traceOut])
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", o.traceOut)
	}
	return nil
}

// simulateCluster runs the workload bulk-synchronously across o.gpus
// GPUs — sequentially, or under the conservative-PDES coordinator when
// -workers > 1 (the two modes produce byte-identical results) — and
// prints the aggregate makespan plus per-GPU metrics.
func simulateCluster(o options, b *uvmsim.Workload, cfg uvmsim.Config, suite *obs.Suite, runName string, stdout io.Writer) error {
	cl := uvmsim.NewCluster(b, cfg, o.gpus)
	cl.Observe(func(idx int) *obs.Run {
		return suite.NewRun(fmt.Sprintf("%s/gpu%d", runName, idx))
	})
	res, err := runClusterChecked(cl)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cluster gpus=%d workers=%d makespan=%d thrashed_pages=%d remote_accesses=%d\n",
		o.gpus, cl.Workers(), res.Cycles, res.TotalThrashedPages(), res.TotalRemoteAccesses())
	if o.csv {
		fmt.Fprintln(stdout, "gpu,metric,value")
		for i := range res.PerGPU {
			c := &res.PerGPU[i]
			for _, kv := range [][2]interface{}{
				{"cycles", c.Cycles}, {"far_faults", c.FarFaults},
				{"migrated_pages", c.MigratedPages}, {"prefetched_pages", c.PrefetchedPages},
				{"thrashed_pages", c.ThrashedPages}, {"evicted_pages", c.EvictedPages},
				{"remote_reads", c.RemoteReads}, {"remote_writes", c.RemoteWrites},
				{"h2d_bytes", c.H2DBytes}, {"d2h_bytes", c.D2HBytes},
			} {
				fmt.Fprintf(stdout, "%d,%s,%v\n", i, kv[0], kv[1])
			}
		}
	} else {
		for i := range res.PerGPU {
			fmt.Fprintf(stdout, "gpu%d: %s\n", i, res.PerGPU[i].String())
		}
	}
	return nil
}

// runClusterChecked mirrors runChecked for cluster runs: an invariant
// violation from the cluster-wide sweep becomes an ordinary error.
func runClusterChecked(cl *uvmsim.Cluster) (res *uvmsim.ClusterResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(*obs.Violation); ok {
				res, err = nil, v
				return
			}
			panic(r)
		}
	}()
	return cl.Run(), nil
}

// runChecked runs the simulation, converting an invariant-checker
// violation (a fail-fast panic carrying a cycle-stamped diagnostic) into
// an ordinary error; any other panic is a bug and propagates.
func runChecked(s *uvmsim.Simulator) (res *uvmsim.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			if v, ok := r.(*obs.Violation); ok {
				res, err = nil, v
				return
			}
			panic(r)
		}
	}()
	return s.Run(), nil
}

// buildFromGraphFile loads an edge-list graph and instantiates bfs or
// sssp over it.
func buildFromGraphFile(workload, path string) (*uvmsim.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := workloads.ParseEdgeList(f)
	if err != nil {
		return nil, err
	}
	switch workload {
	case "bfs":
		return workloads.BFSOnGraph(g)
	case "sssp":
		return workloads.SSSPOnGraph(g, 40)
	default:
		return nil, fmt.Errorf("-graph only applies to bfs and sssp, not %q", workload)
	}
}
