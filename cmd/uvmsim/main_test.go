package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uvmsim/internal/config"
	"uvmsim/internal/mm"
	"uvmsim/internal/obs"
	"uvmsim/internal/resultio"
)

// runCLI invokes the tool body exactly as main does, capturing both
// streams. It fails the test if the invocation panics — every CLI error
// must surface as a one-line message and a non-zero exit code.
func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("run(%q) panicked: %v", args, r)
		}
	}()
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestInvalidFlagValuesExitNonZero(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"unknownPolicy", []string{"-policy", "bogus"}, "unknown policy"},
		{"unknownArch", []string{"-arch", "kepler"}, "unknown"},
		{"zeroThreshold", []string{"-ts", "0"}, "-ts must be positive"},
		{"zeroPenalty", []string{"-p", "0"}, "-p must be positive"},
		{"zeroScale", []string{"-scale", "0"}, "-scale must be positive"},
		{"negativeScale", []string{"-scale", "-1"}, "-scale must be positive"},
		{"zeroOversub", []string{"-oversub", "0"}, "-oversub must be positive"},
		{"epsilonOver100", []string{"-bandit-epsilon", "101"}, "-bandit-epsilon is a percentage"},
		{"unknownWorkload", []string{"-workload", "nosuch"}, "unknown workload"},
		{"unknownReplacement", []string{"-replacement", "mru"}, "unknown replacement"},
		{"unknownPrefetcher", []string{"-prefetcher", "oracle"}, "unknown prefetcher"},
		{"unknownGranularity", []string{"-granularity", "4k"}, "unknown eviction granularity"},
		{"zeroGPUs", []string{"-gpus", "0"}, "-gpus must be at least 1"},
		{"negativeGPUs", []string{"-gpus", "-2"}, "-gpus must be at least 1"},
		{"negativeWorkers", []string{"-workers", "-1"}, "-workers must be non-negative"},
		{"spansOnCluster", []string{"-gpus", "2", "-spans"}, "single-GPU runs only"},
		{"jsonOnCluster", []string{"-gpus", "2", "-json", "out.json"}, "single-GPU runs only"},
		{"undefinedFlag", []string{"-no-such-flag"}, "flag provided but not defined"},
		{"snapshotCheckBadValue", []string{"-snapshot-check", "maybe"}, "-snapshot-check"},
		{"snapshotCheckOnCluster", []string{"-gpus", "2", "-snapshot-check", "on"}, "single-GPU runs only"},
		{"snapshotCheckWithTenants", []string{"-tenants", "bfs:0", "-cxl-pool-mb", "64", "-snapshot-check", "on"}, "single-GPU runs only"},
		{"snapshotCheckWithObs", []string{"-snapshot-check", "on", "-metrics-json", "m.json"}, "observability"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code == 0 {
				t.Fatalf("run(%q) = 0, want non-zero", tc.args)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr = %q, want substring %q", stderr, tc.wantErr)
			}
		})
	}
}

// -snapshot-check runs the cell twice through the snapshot/fork engine
// and fails on divergence; its counters output must be identical to a
// plain run of the same cell, with only the check line added.
func TestSnapshotCheckMatchesPlainRun(t *testing.T) {
	args := []string{"-workload", "ra", "-scale", "0.05", "-oversub", "125"}
	code, plain, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("plain run exited %d: %s", code, stderr)
	}
	code, checked, stderr := runCLI(t, append(args, "-snapshot-check", "on")...)
	if code != 0 {
		t.Fatalf("-snapshot-check run exited %d: %s", code, stderr)
	}
	if !strings.Contains(checked, "snapshot-check: OK") {
		t.Fatalf("missing check line:\n%s", checked)
	}
	var kept []string
	for _, line := range strings.Split(checked, "\n") {
		if !strings.HasPrefix(line, "snapshot-check:") {
			kept = append(kept, line)
		}
	}
	if strings.Join(kept, "\n") != plain {
		t.Fatalf("-snapshot-check output diverges from the plain run:\n%s\nvs\n%s", checked, plain)
	}
}

// Unwritable output paths must fail fast — before the simulation runs —
// so the test asserting the error also proves nothing slow happened.
func TestUnwritableOutputPathsExitNonZero(t *testing.T) {
	for _, flagName := range []string{"-json", "-metrics-json", "-trace-out"} {
		t.Run(flagName, func(t *testing.T) {
			bad := filepath.Join(t.TempDir(), "missing-dir", "out.json")
			code, _, stderr := runCLI(t, "-workload", "ra", "-scale", "0.05", flagName, bad)
			if code == 0 {
				t.Fatalf("%s %s exited 0, want non-zero", flagName, bad)
			}
			if !strings.Contains(stderr, "missing-dir") {
				t.Fatalf("stderr = %q, want the failing path", stderr)
			}
		})
	}
}

func TestRunWithObservabilityOutputs(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.json")
	record := filepath.Join(dir, "record.json")
	code, stdout, stderr := runCLI(t,
		"-workload", "ra", "-scale", "0.05", "-oversub", "125",
		"-metrics-json", metrics, "-trace-out", trace, "-trace-sample", "4",
		"-check-invariants", "10000", "-json", record, "-csv")
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(stdout, "cycles,") {
		t.Fatalf("missing CSV metrics:\n%s", stdout)
	}

	// The metrics document must be the versioned SuiteSnapshot schema.
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.SuiteSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(snap.Runs) != 1 || !strings.HasPrefix(snap.Runs[0].Name, "ra/") {
		t.Fatalf("runs = %+v", snap.Runs)
	}

	// The Chrome trace must be a well-formed traceEvents document.
	raw, err = os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// The resultio record must round-trip, including the embedded
	// metrics block (Read cross-validates it against the counters).
	f, err := os.Open(record)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rec, err := resultio.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Metrics == nil {
		t.Fatal("record is missing the metrics block")
	}
}

func TestTraceJSONLOutput(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.jsonl")
	code, _, stderr := runCLI(t,
		"-workload", "ra", "-scale", "0.05", "-trace-out", trace)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("JSONL trace is empty")
	}
	var first map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("JSONL line 1: %v", err)
	}
}

// A cluster run must print the aggregate makespan line and one stats
// line per GPU, and the PDES mode (-workers) must print exactly the
// same simulation results as the sequential default.
func TestClusterRunOutputsAndWorkerEquivalence(t *testing.T) {
	args := []string{"-workload", "ra", "-scale", "0.05", "-gpus", "4", "-oversub", "125"}
	code, seq, stderr := runCLI(t, args...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(seq, "cluster gpus=4 workers=1") {
		t.Fatalf("missing cluster header:\n%s", seq)
	}
	for i := 0; i < 4; i++ {
		if !strings.Contains(seq, fmt.Sprintf("gpu%d:", i)) {
			t.Fatalf("missing gpu%d stats line:\n%s", i, seq)
		}
	}
	code, par, stderr := runCLI(t, append(args, "-workers", "2")...)
	if code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s", code, stderr)
	}
	if !strings.Contains(par, "cluster gpus=4 workers=2") {
		t.Fatalf("missing PDES cluster header:\n%s", par)
	}
	// Everything except the reported worker count — makespan, totals and
	// every per-GPU counter — must match byte for byte.
	if got := strings.ReplaceAll(par, "workers=2", "workers=1"); got != seq {
		t.Fatalf("PDES output diverged from sequential:\nsequential:\n%s\nparallel:\n%s", seq, par)
	}
}

// Unknown pipeline-component names must exit 2 like every other bad
// flag value.
func TestUnknownPipelineComponentsExitNonZero(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"planner", []string{"-planner", "bogus"}},
		{"evictor", []string{"-evictor", "mru"}},
		{"batcher", []string{"-batcher", "bogus"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("run(%q) = %d, want 2", tc.args, code)
			}
			if !strings.Contains(stderr, "unknown "+tc.name) {
				t.Fatalf("stderr = %q, want unknown-%s error", stderr, tc.name)
			}
		})
	}
}

// Every enum and registry name the tool advertises must be accepted by
// the flag surface: config enum String() values round-trip through the
// CLI parsers, and every registered pipeline component is selectable by
// its listed name.
func TestAdvertisedNamesRoundTripThroughFlags(t *testing.T) {
	base := []string{"-workload", "ra", "-scale", "0.02"}
	runOK := func(t *testing.T, extra ...string) {
		t.Helper()
		args := append(append([]string{}, base...), extra...)
		if code, _, stderr := runCLI(t, args...); code != 0 {
			t.Fatalf("run(%q) = %d, stderr %q", args, code, stderr)
		}
	}
	for _, pol := range config.Policies() {
		t.Run("policy/"+pol.String(), func(t *testing.T) { runOK(t, "-policy", pol.String()) })
	}
	for _, rp := range []config.ReplacementPolicy{config.ReplaceLRU, config.ReplaceLFU} {
		t.Run("replacement/"+rp.String(), func(t *testing.T) { runOK(t, "-replacement", rp.String()) })
	}
	for _, pf := range []config.PrefetcherKind{config.PrefetchTree, config.PrefetchNone, config.PrefetchSequential} {
		t.Run("prefetcher/"+pf.String(), func(t *testing.T) { runOK(t, "-prefetcher", pf.String()) })
	}
	for _, n := range mm.PlannerNames() {
		t.Run("planner/"+n, func(t *testing.T) { runOK(t, "-planner", n) })
	}
	for _, n := range mm.EvictorNames() {
		t.Run("evictor/"+n, func(t *testing.T) { runOK(t, "-evictor", n) })
	}
	for _, n := range mm.BatcherNames() {
		t.Run("batcher/"+n, func(t *testing.T) { runOK(t, "-batcher", n) })
	}
}
