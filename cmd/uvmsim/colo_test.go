package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uvmsim/internal/mm"
	"uvmsim/internal/obs"
)

// coloBase is a tiny but complete co-location invocation every test
// below perturbs.
var coloBase = []string{
	"-tenants", "bfs:0:1,ra:0:0", "-gpus", "1", "-cxl-pool-mb", "32",
	"-colo-epochs", "3", "-seed", "7",
}

func TestColocationFlagValidationExits2(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string
	}{
		{"noPool", []string{"-tenants", "bfs:0"}, "-cxl-pool-mb"},
		{"badTenantSyntax", []string{"-tenants", "bfs", "-cxl-pool-mb", "32"}, "tenant"},
		{"unknownTenantWorkload", []string{"-tenants", "nope:0", "-cxl-pool-mb", "32"}, "unknown workload"},
		{"tenantGPUOutOfRange", []string{"-tenants", "bfs:3", "-gpus", "2", "-cxl-pool-mb", "32"}, "GPU"},
		{"unknownPoolPolicy", []string{"-tenants", "bfs:0", "-cxl-pool-mb", "32", "-pool-policy", "nvlink"}, "unknown pool policy"},
		{"negativeCXLBandwidth", []string{"-tenants", "bfs:0", "-cxl-pool-mb", "32", "-cxl-bw", "-1"}, "CXL"},
		{"negativeEpochs", []string{"-tenants", "bfs:0", "-cxl-pool-mb", "32", "-colo-epochs", "-1"}, "-colo-epochs"},
		{"spansInColoMode", []string{"-tenants", "bfs:0", "-cxl-pool-mb", "32", "-spans"}, "co-location"},
		{"graphInColoMode", []string{"-tenants", "bfs:0", "-cxl-pool-mb", "32", "-graph", "g.txt"}, "co-location"},
		{"jsonInColoMode", []string{"-tenants", "bfs:0", "-cxl-pool-mb", "32", "-json", "r.json"}, "co-location"},
		{"cxlFlagWithoutTenants", []string{"-workload", "ra", "-cxl-pool-mb", "32"}, "-cxl-pool-mb applies to the co-location mode"},
		{"poolPolicyWithoutTenants", []string{"-workload", "ra", "-pool-policy", "cxl-repl"}, "-pool-policy applies to the co-location mode"},
		{"thresholdWithoutTenants", []string{"-workload", "ra", "-cxl-threshold", "8"}, "-cxl-threshold applies to the co-location mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, stderr := runCLI(t, tc.args...)
			if code != 2 {
				t.Fatalf("run(%q) = %d, want 2 (stderr %q)", tc.args, code, stderr)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr = %q, want substring %q", stderr, tc.wantErr)
			}
		})
	}
}

// Every registered pool policy must be selectable by its advertised
// name — the same round-trip convention the pipeline registries follow.
func TestPoolPolicyNamesRoundTripThroughFlags(t *testing.T) {
	for _, n := range mm.PoolPolicyNames() {
		t.Run(n, func(t *testing.T) {
			args := append(append([]string{}, coloBase...), "-pool-policy", n)
			if code, _, stderr := runCLI(t, args...); code != 0 {
				t.Fatalf("run(%q) = %d, stderr %q", args, code, stderr)
			}
		})
	}
}

func TestColocationRunPrintsResultAndIsSeedStable(t *testing.T) {
	code, out1, stderr := runCLI(t, coloBase...)
	if code != 0 {
		t.Fatalf("colo run = %d, stderr %q", code, stderr)
	}
	for _, want := range []string{"colo gpus=1 tenants=2", "cycles=", "checksum=", "fairness=", "tenant0 bfs", "tenant1 ra"} {
		if !strings.Contains(out1, want) {
			t.Fatalf("stdout missing %q:\n%s", want, out1)
		}
	}
	if _, out2, _ := runCLI(t, coloBase...); out2 != out1 {
		t.Fatalf("repeat colo run diverged:\n%s\nvs\n%s", out1, out2)
	}
	csvArgs := append(append([]string{}, coloBase...), "-csv")
	if code, out, _ := runCLI(t, csvArgs...); code != 0 ||
		!strings.Contains(out, "tenant,workload,gpu,priority") {
		t.Fatalf("csv colo run = %d:\n%s", code, out)
	}
}

func TestColocationMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "colo-metrics.json")
	args := append(append([]string{}, coloBase...), "-metrics-json", path)
	if code, _, stderr := runCLI(t, args...); code != 0 {
		t.Fatalf("colo metrics run = %d, stderr %q", code, stderr)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if err := snap.Validate(); err != nil {
		t.Fatal(err)
	}
	if snap.Counter("cxl.promotions")+snap.Counter("cxl.replications")+snap.Counter("cxl.evictions") == 0 {
		t.Fatalf("no controller activity in snapshot: %+v", snap.Counters)
	}
	if _, ok := snap.Gauges["cxl.fairness_jain"]; !ok {
		t.Fatal("fairness gauge missing from snapshot")
	}
}
