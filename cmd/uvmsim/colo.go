package main

import (
	"fmt"
	"io"
	"os"

	"uvmsim"
	"uvmsim/internal/cliutil"
	"uvmsim/internal/cxl"
	"uvmsim/internal/memunits"
	"uvmsim/internal/mm"
	"uvmsim/internal/obs"
)

// buildColoConfig maps the -cxl-* flags onto the tiered configuration
// and validates the result (page alignment, policy names, bandwidth
// sign — the same gate sweeps go through).
func buildColoConfig(o options) (uvmsim.Config, error) {
	cfg := uvmsim.DefaultConfig()
	cfg.CXLPoolBytes = o.cxlPoolMB << 20
	cfg.CXLBytesPerCycle = o.cxlBW
	cfg.CXLLatency = o.cxlLatency
	cfg.CXLReadThreshold = o.cxlThreshold
	name, err := cliutil.ParseComponentName("pool policy", o.poolPolicy, mm.PoolPolicyNames())
	if err != nil {
		return cfg, err
	}
	cfg.PoolPolicy = name
	if o.coloEpochs < 0 {
		return cfg, fmt.Errorf("-colo-epochs must be non-negative, got %d", o.coloEpochs)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// createOut opens an output file, failing before any simulation runs.
func createOut(path string) (*os.File, error) { return os.Create(path) }

// simulateColocation runs the multi-tenant co-location mode selected by
// -tenants: the listed workloads co-scheduled on -gpus GPUs over a
// pooled CXL tier, with per-tenant accounting and the fairness index
// printed alongside the controller counters (see DESIGN.md §15).
func simulateColocation(o options, stdout, stderr io.Writer) error {
	if o.cxlPoolMB == 0 {
		return fmt.Errorf("-tenants requires a pooled tier: set -cxl-pool-mb")
	}
	if o.graphFile != "" || o.spans || o.jsonOut != "" {
		return fmt.Errorf("-graph, -spans and -json apply to single-workload runs only (co-location mode)")
	}
	cfg, err := buildColoConfig(o)
	if err != nil {
		return err
	}
	tenants, err := cxl.ParseTenants(o.tenants, o.gpus)
	if err != nil {
		return err
	}
	sc := cxl.ScenarioConfig{
		Cfg:     cfg,
		GPUs:    o.gpus,
		Tenants: tenants,
		Epochs:  o.coloEpochs,
		Seed:    o.seed,
		Workers: o.workers,
	}
	s, err := cxl.NewScenario(sc)
	if err != nil {
		return err
	}
	var reg *obs.Registry
	if o.metricsJSON != "" {
		reg = obs.NewRegistry()
		s.Observe(reg)
	}
	pol, err := mm.NewPoolPolicy(cfg.PoolPolicy, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "colo gpus=%d tenants=%d pool=%s policy=%s threshold=%d\n",
		o.gpus, len(tenants), memunits.HumanBytes(cfg.CXLPoolBytes),
		pol.Name(), cfg.CXLThreshold())
	r, err := s.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "cycles=%d checksum=%d fairness=%.3f replications=%d promotions=%d demotions=%d invalidations=%d evictions=%d\n",
		r.SimCycles, r.Checksum, r.Fairness, r.Replications, r.Promotions,
		r.Demotions, r.Invalidations, r.Evictions)
	if o.csv {
		fmt.Fprintln(stdout, "tenant,workload,gpu,priority,accesses,local_hits,pool_accesses,cross_accesses,avg_latency_cycles,peak_pages,evicted_pages")
		for i, tn := range r.Tenants {
			fmt.Fprintf(stdout, "%d,%s,%d,%d,%d,%d,%d,%d,%.3f,%d,%d\n",
				i, tn.Workload, tn.GPU, tn.Priority, tn.Accesses, tn.LocalHits,
				tn.PoolAccesses, tn.CrossAccess, tn.AvgLatency, tn.PeakPages, tn.EvictedPages)
		}
	} else {
		for i, tn := range r.Tenants {
			fmt.Fprintf(stdout, "tenant%d %-12s gpu=%d prio=%d accesses=%d local=%d pool=%d cross=%d avg_latency=%.1f peak_pages=%d evicted_pages=%d\n",
				i, tn.Workload, tn.GPU, tn.Priority, tn.Accesses, tn.LocalHits,
				tn.PoolAccesses, tn.CrossAccess, tn.AvgLatency, tn.PeakPages, tn.EvictedPages)
		}
	}
	if o.metricsJSON != "" {
		f, err := createOut(o.metricsJSON)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := reg.Collect().WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wrote %s\n", o.metricsJSON)
	}
	return nil
}
