// Command simlint machine-checks the repository's determinism and
// correctness conventions: the invariants every golden CSV and the ±2%
// bench gate silently rely on. It is a multichecker in the spirit of
// staticcheck's analyzer architecture, built on the stdlib-only
// framework in internal/lint.
//
// Usage:
//
//	simlint [-list] [-only name,name] [-fix] [packages]
//
// With no package patterns it checks ./.... Exit status is 0 when the
// tree is clean, 1 when findings were reported, 2 on usage or load
// errors. -fix applies the suggested fixes analyzers attach to their
// findings (currently the sorted-map-keys rewrite from seedflow and
// floatdet) and rewrites the affected files in place; on a clean tree
// it is a no-op, which CI asserts. Findings are suppressed
// line-by-line with `//simlint:allow <analyzer> -- reason`.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"uvmsim/internal/lint"
	"uvmsim/internal/lint/eventseq"
	"uvmsim/internal/lint/floatdet"
	"uvmsim/internal/lint/goroleak"
	"uvmsim/internal/lint/hotalloc"
	"uvmsim/internal/lint/lockhold"
	"uvmsim/internal/lint/maporder"
	"uvmsim/internal/lint/satarith"
	"uvmsim/internal/lint/seedflow"
	"uvmsim/internal/lint/statsowner"
	"uvmsim/internal/lint/wallclock"
)

// analyzers is the full suite in output order. New analyzers register
// here and in DESIGN.md §11/§16.
func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		eventseq.Analyzer,
		floatdet.Analyzer,
		goroleak.Analyzer,
		hotalloc.Analyzer,
		lockhold.Analyzer,
		maporder.Analyzer,
		satarith.Analyzer,
		seedflow.Analyzer,
		statsowner.Analyzer,
		wallclock.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run is the testable entry point: args are the command-line arguments,
// dir is the directory go list resolves patterns against.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fix := fs.Bool("fix", false, "apply suggested fixes, rewriting files in place")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [-list] [-only name,name] [-fix] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "simlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	diags := lint.RunAnalyzers(pkgs, suite)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if *fix {
		if err := applyFixes(diags, stdout); err != nil {
			fmt.Fprintf(stderr, "simlint: %v\n", err)
			return 2
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// applyFixes rewrites, in place, every file with suggested edits.
// Files are visited in sorted order so the rewrite report is
// deterministic.
func applyFixes(diags []lint.Diagnostic, stdout io.Writer) error {
	byFile := lint.EditsByFile(diags)
	names := make([]string, 0, len(byFile))
	for name := range byFile {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		fixed, err := lint.ApplyEdits(src, byFile[name])
		if err != nil {
			return fmt.Errorf("%s: %v", name, err)
		}
		if bytes.Equal(src, fixed) {
			continue
		}
		if err := os.WriteFile(name, fixed, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "simlint: rewrote %s\n", name)
	}
	return nil
}
