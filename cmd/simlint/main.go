// Command simlint machine-checks the repository's determinism and
// correctness conventions: the invariants every golden CSV and the ±2%
// bench gate silently rely on. It is a multichecker in the spirit of
// staticcheck's analyzer architecture, built on the stdlib-only
// framework in internal/lint.
//
// Usage:
//
//	simlint [-list] [-only name,name] [packages]
//
// With no package patterns it checks ./.... Exit status is 0 when the
// tree is clean, 1 when findings were reported, 2 on usage or load
// errors. Findings are suppressed line-by-line with
// `//simlint:allow <analyzer> -- reason`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"uvmsim/internal/lint"
	"uvmsim/internal/lint/eventseq"
	"uvmsim/internal/lint/hotalloc"
	"uvmsim/internal/lint/maporder"
	"uvmsim/internal/lint/satarith"
	"uvmsim/internal/lint/statsowner"
	"uvmsim/internal/lint/wallclock"
)

// analyzers is the full suite in output order. New analyzers register
// here and in DESIGN.md §11.
func analyzers() []*lint.Analyzer {
	return []*lint.Analyzer{
		eventseq.Analyzer,
		hotalloc.Analyzer,
		maporder.Analyzer,
		satarith.Analyzer,
		statsowner.Analyzer,
		wallclock.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], ".", os.Stdout, os.Stderr))
}

// run is the testable entry point: args are the command-line arguments,
// dir is the directory go list resolves patterns against.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list available analyzers and exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simlint [-list] [-only name,name] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	suite := analyzers()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*lint.Analyzer, len(suite))
		for _, a := range suite {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				fmt.Fprintf(stderr, "simlint: unknown analyzer %q (use -list)\n", name)
				return 2
			}
			picked = append(picked, a)
		}
		suite = picked
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.LoadPackages(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "simlint: %v\n", err)
		return 2
	}
	diags := lint.RunAnalyzers(pkgs, suite)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "simlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
