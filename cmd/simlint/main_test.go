package main

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the module root relative to this source file so the
// test is independent of the working directory go test chose.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestRepoIsClean is the self-hosting smoke test: the full analyzer
// suite over the whole repository must report nothing. A finding here
// means either a real violation slipped in or an analyzer regressed
// into a false positive — both block CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run(nil, repoRoot(t), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("simlint ./... exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if out := stdout.String(); out != "" {
		t.Errorf("expected no findings, got:\n%s", out)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, ".", &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{
		"eventseq", "floatdet", "goroleak", "hotalloc", "lockhold",
		"maporder", "satarith", "seedflow", "statsowner", "wallclock",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestOnlyUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, ".", &stdout, &stderr); code != 2 {
		t.Fatalf("expected exit 2 for unknown analyzer, got %d", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

// TestFixRewrites drives -fix end to end on a throwaway module: the
// first run rewrites the map-order loop to sorted-key iteration, the
// second run is clean — the convergence property the lint-fix-check CI
// step relies on.
func TestFixRewrites(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpfix\n\ngo 1.23\n")
	write("a.go", `package tmpfix

func Keys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "seedflow", "-fix", "./..."}, dir, &stdout, &stderr); code != 1 {
		t.Fatalf("first -fix run: expected exit 1 (finding reported), got %d\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	src, err := os.ReadFile(filepath.Join(dir, "a.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "slices.Sorted(maps.Keys(m))") {
		t.Fatalf("fix not applied:\n%s", src)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-only", "seedflow", "-fix", "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("second -fix run: expected clean exit, got %d\nstdout:\n%s\nstderr:\n%s\nsource:\n%s",
			code, stdout.String(), stderr.String(), src)
	}
}

// TestOnlySubset runs a single analyzer over the repo; exercises the
// -only selection path end to end.
func TestOnlySubset(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "wallclock"}, repoRoot(t), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-only wallclock exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
