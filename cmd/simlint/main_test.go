package main

import (
	"bytes"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot locates the module root relative to this source file so the
// test is independent of the working directory go test chose.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestRepoIsClean is the self-hosting smoke test: the full analyzer
// suite over the whole repository must report nothing. A finding here
// means either a real violation slipped in or an analyzer regressed
// into a false positive — both block CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run(nil, repoRoot(t), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("simlint ./... exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if out := stdout.String(); out != "" {
		t.Errorf("expected no findings, got:\n%s", out)
	}
}

func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, ".", &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit %d, stderr: %s", code, stderr.String())
	}
	for _, name := range []string{"eventseq", "hotalloc", "maporder", "satarith", "statsowner", "wallclock"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestOnlyUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, ".", &stdout, &stderr); code != 2 {
		t.Fatalf("expected exit 2 for unknown analyzer, got %d", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %s", stderr.String())
	}
}

// TestOnlySubset runs a single analyzer over the repo; exercises the
// -only selection path end to end.
func TestOnlySubset(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-only", "wallclock"}, repoRoot(t), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("-only wallclock exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}
